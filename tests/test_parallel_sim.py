"""The fault-sharded parallel simulation layer.

Covers the sharding helpers, bit-exact equivalence with the serial
simulator, the deterministic merge order, graceful degradation to the
serial path, the PPSFP fault split, and the n_jobs=1-vs-4 determinism
regression on Procedure 2 (byte-identical serialized results).
"""

import dataclasses
import json
import warnings

import numpy as np
import pytest

from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.core.config import BistConfig
from repro.core.procedure2 import run_procedure2
from repro.core.test_set import generate_ts0
from repro.experiments.serialize import result_to_dict
from repro.faults import sharding
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator, ObservationPolicy
from repro.faults.model import FaultGraph
from repro.faults.ppsfp import CombinationalFaultSimulator, pack_patterns
from repro.faults.sharding import (
    ShardedFaultSimulator,
    resolve_n_jobs,
    shard_faults,
)
from repro.rpg.prng import make_source
from repro.simulation.compiled import shard_word_ranges
from tests.test_fault_sim_grouped import mixed_tests


class TestShardHelpers:
    def test_word_ranges_cover_and_balance(self):
        ranges = shard_word_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]
        assert shard_word_ranges(2, 5) == [(0, 1), (1, 2)]
        assert shard_word_ranges(0, 4) == []
        assert shard_word_ranges(7, 1) == [(0, 7)]

    def test_word_ranges_validate(self):
        with pytest.raises(ValueError):
            shard_word_ranges(-1, 2)
        with pytest.raises(ValueError):
            shard_word_ranges(4, 0)

    def test_shard_faults_word_aligned(self, s27):
        faults = collapse_faults(s27) * 5  # 160 faults -> 3 words
        shards = shard_faults(faults, 2)
        assert [f for s in shards for f in s] == list(faults)
        assert all(len(s) % 64 == 0 for s in shards[:-1])

    def test_shard_faults_fewer_than_requested(self, s27):
        faults = collapse_faults(s27)  # 32 faults = one word
        assert len(shard_faults(faults, 8)) == 1

    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(-1) >= 1
        with pytest.raises(ValueError):
            resolve_n_jobs(0)
        with pytest.raises(ValueError):
            resolve_n_jobs(-2)

    def test_config_validates_n_jobs(self):
        assert BistConfig(n_jobs=4).n_jobs == 4
        assert BistConfig(n_jobs=-1).n_jobs == -1
        with pytest.raises(ValueError):
            BistConfig(n_jobs=0)

    def test_with_lengths_keeps_n_jobs(self):
        cfg = BistConfig(n_jobs=4).with_lengths(8, 32, 16)
        assert cfg.n_jobs == 4


class TestShardedEquivalence:
    def test_simulate_records_identical(self, s27):
        sim = FaultSimulator(s27)
        faults = collapse_faults(s27)
        tests = mixed_tests(s27, 31)
        serial = sim.simulate(tests, faults)
        with sim.sharded(3) as psim:
            parallel = psim.simulate(tests, faults)
        assert parallel == serial
        # The merged dict preserves the serial first-detection order.
        assert list(parallel) == list(serial)

    def test_simulate_grouped_sets_identical(self, medium_synth):
        sim = FaultSimulator(medium_synth)
        faults = collapse_faults(medium_synth)
        tests = mixed_tests(medium_synth, 7)
        serial = sim.simulate_grouped(tests, faults)
        with sim.sharded(2) as psim:
            parallel = psim.simulate_grouped(tests, faults)
        assert set(parallel) == set(serial)

    def test_restricted_policy(self, s27):
        sim = FaultSimulator(s27)
        faults = collapse_faults(s27)
        tests = mixed_tests(s27, 13)
        policy = ObservationPolicy(limited_scan_out=False)
        with sim.sharded(2) as psim:
            assert psim.simulate(tests, faults, policy) == sim.simulate(
                tests, faults, policy
            )

    def test_n_jobs_1_bypasses_pool(self, s27):
        sim = FaultSimulator(s27)
        psim = sim.sharded(1)
        faults = collapse_faults(s27)
        tests = mixed_tests(s27, 3)
        assert psim.simulate(tests, faults) == sim.simulate(tests, faults)
        assert psim._pool is None
        psim.close()

    def test_detected_by_universe_order(self, s27):
        sim = FaultSimulator(s27)
        faults = collapse_faults(s27)
        tests = mixed_tests(s27, 5)
        with sim.sharded(2) as psim:
            assert psim.detected_by(tests, faults) == sim.detected_by(
                tests, faults
            )


class TestGracefulDegradation:
    def test_pool_failure_falls_back_to_serial(self, medium_synth, monkeypatch):
        class BrokenPool:
            def __init__(self, *a, **k):
                raise OSError("fork failed")

        monkeypatch.setattr(sharding, "SimulatorPool", BrokenPool)
        sim = FaultSimulator(medium_synth)
        faults = collapse_faults(medium_synth)  # > 64 faults: real sharding
        assert len(faults) > 64
        tests = mixed_tests(medium_synth, 11)
        with ShardedFaultSimulator(sim, 2) as psim:
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # no more RuntimeWarning API
                records = psim.simulate(tests, faults)
            assert records == sim.simulate(tests, faults)
            # The failure is structured, not a warning: one
            # pool-unavailable event per pending shard, resolved serially.
            assert psim.degradation.degraded
            events = psim.degradation.events
            assert {e.kind for e in events} == {"pool-unavailable"}
            assert {e.action for e in events} == {"serial"}
            assert len(events) == 2
            # After a pool-level failure the front-end stays serial,
            # without growing the report further.
            again = psim.simulate(tests, faults)
            assert again == records
            assert len(psim.degradation.events) == 2

    def test_ppsfp_failure_falls_back(self, s27, monkeypatch):
        class BrokenPool:
            def __init__(self, *a, **k):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *a):
                pass

            def map_method(self, *a, **k):
                raise RuntimeError("no fork for you")

        monkeypatch.setattr(sharding, "SimulatorPool", BrokenPool)
        graph = FaultGraph(s27)
        csim = CombinationalFaultSimulator(graph)
        faults = collapse_faults(s27)
        src = make_source(3)
        patterns = np.array(
            [src.bits(csim.num_inputs) for _ in range(32)], dtype=np.uint8
        )
        words = pack_patterns(patterns)
        mask = np.full(1, np.uint64(0xFFFFFFFF))
        serial = csim.detected(words, faults, mask)
        with pytest.warns(RuntimeWarning, match="falling back"):
            parallel = csim.detected(words, faults, mask, n_jobs=2)
        assert parallel == serial


class TestPpsfpSharded:
    def test_same_hits_same_order(self, s27):
        graph = FaultGraph(s27)
        csim = CombinationalFaultSimulator(graph)
        faults = collapse_faults(s27)
        src = make_source(9)
        patterns = np.array(
            [src.bits(csim.num_inputs) for _ in range(64)], dtype=np.uint8
        )
        words = pack_patterns(patterns)
        serial = csim.detected(words, faults)
        parallel = csim.detected(words, faults, n_jobs=2)
        assert parallel == serial


class TestProcedure2Determinism:
    """Same seed => byte-identical serialized results for n_jobs 1 vs 4."""

    CFG = BistConfig(la=4, lb=8, n=16, n_same_fc=2, max_iterations=6)

    def _serialized(self, circuit, cfg):
        result = run_procedure2(circuit, cfg, collapse_faults(circuit))
        return json.dumps(result_to_dict(result), sort_keys=True)

    def test_s27_byte_identical(self, s27):
        serial = self._serialized(s27, self.CFG)
        parallel = self._serialized(
            s27, dataclasses.replace(self.CFG, n_jobs=4)
        )
        assert parallel == serial

    def test_synthetic_byte_identical(self):
        circuit = synthesize(
            SyntheticSpec(name="det", n_pi=5, n_po=2, n_ff=5, n_gates=40, seed=23)
        )
        serial = self._serialized(circuit, self.CFG)
        parallel = self._serialized(
            circuit, dataclasses.replace(self.CFG, n_jobs=4)
        )
        assert parallel == serial

    def test_explicit_n_jobs_argument_wins(self, s27):
        # The n_jobs parameter overrides config.n_jobs; forcing the
        # config-parallel run serial still matches the baseline byte for
        # byte (n_jobs is not serialized).
        cfg = dataclasses.replace(self.CFG, n_jobs=4)
        faults = collapse_faults(s27)
        forced_serial = run_procedure2(s27, cfg, faults, n_jobs=1)
        baseline = run_procedure2(s27, self.CFG, faults)
        assert json.dumps(result_to_dict(forced_serial)) == json.dumps(
            result_to_dict(baseline)
        )


class TestTs0Parallel:
    def test_ts0_detection_counts_match(self, s27):
        cfg = BistConfig(la=4, lb=8, n=8)
        ts0 = generate_ts0(s27, cfg)
        sim = FaultSimulator(s27)
        faults = collapse_faults(s27)
        serial = sim.simulate_grouped(ts0, faults)
        with sim.sharded(4) as psim:
            parallel = psim.simulate_grouped(ts0, faults)
        assert set(parallel) == set(serial)


class TestPicklingDiscipline:
    """The simulator is serialized exactly once per pool lifetime.

    Historically the serial-rescue path re-pickled the compiled circuit
    on every fallback dispatch; ``SimulatorPool`` now serializes lazily
    and exactly once, and a respawn after ``kill()`` reuses the cached
    payload.  These tests pin that discipline via ``pickle_count``.
    """

    def test_pickled_once_across_dispatches_and_respawn(self, medium_synth):
        sim = FaultSimulator(medium_synth)
        faults = collapse_faults(medium_synth)
        assert len(faults) > 64  # at least two shards: the pool spawns
        tests = mixed_tests(medium_synth, 3)
        with sim.sharded(2) as psim:
            psim.simulate(tests, faults)
            psim.simulate(tests, faults)
            pool = psim._pool
            assert pool is not None
            assert pool.pickle_count == 1
            pool.kill()  # respawn on the next dispatch
            psim.simulate(tests, faults)
            assert pool.pickle_count == 1

    def test_unused_pool_never_pickles(self, s27):
        pool = sharding.SimulatorPool(FaultSimulator(s27), 2)
        try:
            assert pool.pickle_count == 0
        finally:
            pool.close()

    def test_persistent_pool_publishes_once(self, s27):
        """The pool evaluator's session state is serialized exactly once
        (at segment publication), regardless of dispatch count."""
        import pickle as _pickle

        from repro.core.limited_scan import build_limited_scan_test_set
        from repro.faults.pool import CandidateEvaluator

        cfg = BistConfig(la=4, lb=8, n=8, n_jobs=2, candidate_batch=4)
        sim = FaultSimulator(s27)
        faults = collapse_faults(s27)
        ts0 = generate_ts0(s27, cfg)
        counts = {"n": 0}
        real_dumps = _pickle.dumps

        def counting_dumps(obj, *a, **k):
            if isinstance(obj, dict) and "simulator" in obj:
                counts["n"] += 1
            return real_dumps(obj, *a, **k)

        ev = CandidateEvaluator(
            sim, ts0, cfg, s27.num_state_vars, None,
            n_jobs=2, targets=faults, circuit_name=s27.name,
        )
        specs = [(1, d1) for d1 in cfg.d1_values[:4]]
        from repro.faults import pool as pool_mod
        original = pool_mod.pickle.dumps
        pool_mod.pickle.dumps = counting_dumps
        try:
            with ev:
                ev.evaluate_specs(specs, faults)
                ev.evaluate_specs([(2, d1) for d1 in cfg.d1_values[:4]],
                                  faults)
        finally:
            pool_mod.pickle.dumps = original
        assert counts["n"] <= 1
