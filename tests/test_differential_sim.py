"""Differential testing of the three fault-simulation paths.

Seeded random circuits and random limited-scan schedules are simulated
through

1. the compiled bit-parallel fault simulator (the serial reference),
2. the fault-sharded parallel simulator built on top of it, and
3. a scalar oracle built on the event-driven simulator, which shares no
   evaluation code with the compiled engine: each fault becomes a
   *mutated circuit* (the faulty net's driver replaced by a constant
   generator) or a forced input/state bit, and detection is any
   difference in the observation stream (PO values per time unit, bits
   leaving during limited scans, the final scan-out).

All three must report the identical detection set on every case.  This
is the correctness guard for the parallel sharding layer: bit-exact
equivalence with the serial simulator is its entire contract.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator, ScanTest
from repro.faults.model import Fault, FaultGraph
from repro.rpg.prng import make_source
from repro.simulation.event_sim import EventSimulator


class EventSimFaultOracle:
    """Scalar stuck-at fault simulation through the event-driven engine.

    Works on the fault graph's rewritten circuit (two-input gates,
    explicit fanout branches), where every fault is an output stuck-at on
    one net.  Faults on gate outputs are modelled structurally by
    replacing the driver with CONST0/CONST1; faults on primary inputs or
    flop outputs are modelled by forcing the driven bit (the flop's
    latched/scanned value stays uncorrupted, matching the compiled
    simulator's semantics).
    """

    def __init__(self, graph: FaultGraph) -> None:
        self.graph = graph
        self.circuit = graph.sim_circuit
        self.n_sv = self.circuit.num_state_vars

    def _mutated(self, net: str, value: int) -> Circuit:
        const = GateType.CONST1 if value else GateType.CONST0
        out = Circuit(self.circuit.name + "_mut")
        for pi in self.circuit.inputs:
            out.add_input(pi)
        for po in self.circuit.outputs:
            out.add_output(po)
        for gate in self.circuit.iter_gates():
            if gate.output == net:
                out.add_gate(net, const, ())
            else:
                out.add_gate(gate.output, gate.gtype, gate.inputs)
        for flop in self.circuit.flops:
            out.add_flop(flop.q, flop.d)
        return out

    def observations(
        self, test: ScanTest, fault: Optional[Fault] = None
    ) -> List[int]:
        """The flat observation stream of one (possibly faulty) machine."""
        circuit = self.circuit
        force_pi: Optional[Tuple[int, int]] = None
        force_q: Optional[Tuple[int, int]] = None
        if fault is not None:
            net = self.graph.net_of(fault)
            if circuit.gate_for(net) is not None:
                circuit = self._mutated(net, fault.value)
            elif circuit.is_input(net):
                force_pi = (circuit.inputs.index(net), fault.value)
            else:
                force_q = (circuit.state_vars.index(net), fault.value)

        sim = EventSimulator(circuit)
        state = list(test.si)  # true state; position 0 = scan-in end
        obs: List[int] = []
        first = True
        for u, vector in enumerate(test.vectors):
            k, fill = test.step(u)
            if k > 0:
                # Shift cycle j observes the bit that started at
                # position n_sv - 1 - j; fill enters on the left, first
                # bit travelling deepest.
                obs.extend(state[self.n_sv - 1 - j] for j in range(k))
                state = list(fill[::-1]) + state[: self.n_sv - k]
            drive_state = list(state)
            if force_q is not None:
                drive_state[force_q[0]] = force_q[1]
            bits = list(vector)
            if force_pi is not None:
                bits[force_pi[0]] = force_pi[1]
            if first:
                sim.initialize(bits, drive_state)
                first = False
            else:
                sim.set_inputs(
                    dict(
                        zip(
                            circuit.inputs + circuit.state_vars,
                            bits + drive_state,
                        )
                    )
                )
            obs.extend(sim.output_bits())
            state = sim.next_state_bits()
        obs.extend(state)  # final scan-out (full scan)
        return obs

    def detected(self, tests: List[ScanTest], faults: List[Fault]) -> set:
        references = [self.observations(t) for t in tests]
        hits = set()
        for fault in faults:
            for test, ref in zip(tests, references):
                if self.observations(test, fault) != ref:
                    hits.add(fault)
                    break
        return hits


def random_tests(circuit: Circuit, seed: int, n_tests: int = 3) -> List[ScanTest]:
    """Random tests with random limited-scan schedules (k = 0..N_SV)."""
    src = make_source(seed)
    n_sv = circuit.num_state_vars
    tests = []
    for _ in range(n_tests):
        length = 3 + src.mod_draw(3)
        schedule = [(0, ())]
        for _u in range(1, length):
            k = src.mod_draw(n_sv + 1)
            schedule.append((k, tuple(src.bits(k))))
        tests.append(
            ScanTest(
                si=src.bits(n_sv),
                vectors=[src.bits(circuit.num_inputs) for _ in range(length)],
                schedule=schedule,
            )
        )
    return tests


def random_case(seed: int) -> Tuple[Circuit, List[ScanTest]]:
    circuit = synthesize(
        SyntheticSpec(
            name=f"diff{seed}",
            n_pi=3 + seed % 3,
            n_po=2,
            n_ff=3 + seed % 2,
            n_gates=22 + seed % 7,
            seed=1000 + seed,
        )
    )
    return circuit, random_tests(circuit, seed=seed * 7 + 1)


@pytest.mark.parametrize("seed", range(20))
def test_three_way_detection_sets_identical(seed):
    """compiled serial == sharded parallel == event-sim oracle."""
    circuit, tests = random_case(seed)
    graph = FaultGraph(circuit)
    faults = collapse_faults(circuit)
    sim = FaultSimulator(graph)

    compiled = set(sim.simulate(tests, faults))
    with sim.sharded(2) as psim:
        sharded = set(psim.simulate(tests, faults))
    oracle = EventSimFaultOracle(graph).detected(tests, faults)

    assert sharded == compiled
    assert oracle == compiled


def test_oracle_catches_an_injected_discrepancy():
    """The harness is not vacuous: corrupting one schedule changes the
    oracle's observation stream."""
    circuit, tests = random_case(3)
    oracle = EventSimFaultOracle(FaultGraph(circuit))
    baseline = oracle.observations(tests[0])
    corrupted = ScanTest(
        si=list(tests[0].si),
        vectors=[list(v) for v in tests[0].vectors],
        schedule=[(0, ())] * tests[0].length,
    )
    # With every limited scan stripped, some case must differ; pick a
    # test whose schedule actually shifts.
    shifted = [t for t in tests if t.total_shift_cycles > 0]
    if shifted:
        t = shifted[0]
        stripped = ScanTest(
            si=list(t.si),
            vectors=[list(v) for v in t.vectors],
            schedule=[(0, ())] * t.length,
        )
        assert oracle.observations(stripped) != oracle.observations(t)
    else:  # pragma: no cover - seeds above guarantee shifts
        assert baseline == oracle.observations(corrupted)
