"""Differential testing of the three fault-simulation paths.

Seeded random circuits and random limited-scan schedules are simulated
through

1. the compiled bit-parallel fault simulator (the serial reference),
2. the fault-sharded parallel simulator built on top of it, and
3. a scalar oracle built on the event-driven simulator, which shares no
   evaluation code with the compiled engine: each fault becomes a
   *mutated circuit* (the faulty net's driver replaced by a constant
   generator) or a forced input/state bit, and detection is any
   difference in the observation stream (PO values per time unit, bits
   leaving during limited scans, the final scan-out).

All three must report the identical detection set on every case.  This
is the correctness guard for the parallel sharding layer: bit-exact
equivalence with the serial simulator is its entire contract.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator, ScanTest
from repro.faults.model import Fault, FaultGraph
from repro.rpg.prng import make_source
from repro.simulation.event_sim import EventSimulator


class EventSimFaultOracle:
    """Scalar stuck-at fault simulation through the event-driven engine.

    Works on the fault graph's rewritten circuit (two-input gates,
    explicit fanout branches), where every fault is an output stuck-at on
    one net.  Faults on gate outputs are modelled structurally by
    replacing the driver with CONST0/CONST1; faults on primary inputs or
    flop outputs are modelled by forcing the driven bit (the flop's
    latched/scanned value stays uncorrupted, matching the compiled
    simulator's semantics).
    """

    def __init__(self, graph: FaultGraph) -> None:
        self.graph = graph
        self.circuit = graph.sim_circuit
        self.n_sv = self.circuit.num_state_vars

    def _mutated(self, net: str, value: int) -> Circuit:
        const = GateType.CONST1 if value else GateType.CONST0
        out = Circuit(self.circuit.name + "_mut")
        for pi in self.circuit.inputs:
            out.add_input(pi)
        for po in self.circuit.outputs:
            out.add_output(po)
        for gate in self.circuit.iter_gates():
            if gate.output == net:
                out.add_gate(net, const, ())
            else:
                out.add_gate(gate.output, gate.gtype, gate.inputs)
        for flop in self.circuit.flops:
            out.add_flop(flop.q, flop.d)
        return out

    def observations(
        self, test: ScanTest, fault: Optional[Fault] = None
    ) -> List[int]:
        """The flat observation stream of one (possibly faulty) machine."""
        circuit = self.circuit
        force_pi: Optional[Tuple[int, int]] = None
        force_q: Optional[Tuple[int, int]] = None
        if fault is not None:
            net = self.graph.net_of(fault)
            if circuit.gate_for(net) is not None:
                circuit = self._mutated(net, fault.value)
            elif circuit.is_input(net):
                force_pi = (circuit.inputs.index(net), fault.value)
            else:
                force_q = (circuit.state_vars.index(net), fault.value)

        sim = EventSimulator(circuit)
        state = list(test.si)  # true state; position 0 = scan-in end
        obs: List[int] = []
        first = True
        for u, vector in enumerate(test.vectors):
            k, fill = test.step(u)
            if k > 0:
                # Shift cycle j observes the bit that started at
                # position n_sv - 1 - j; fill enters on the left, first
                # bit travelling deepest.
                obs.extend(state[self.n_sv - 1 - j] for j in range(k))
                state = list(fill[::-1]) + state[: self.n_sv - k]
            drive_state = list(state)
            if force_q is not None:
                drive_state[force_q[0]] = force_q[1]
            bits = list(vector)
            if force_pi is not None:
                bits[force_pi[0]] = force_pi[1]
            if first:
                sim.initialize(bits, drive_state)
                first = False
            else:
                sim.set_inputs(
                    dict(
                        zip(
                            circuit.inputs + circuit.state_vars,
                            bits + drive_state,
                        )
                    )
                )
            obs.extend(sim.output_bits())
            state = sim.next_state_bits()
        obs.extend(state)  # final scan-out (full scan)
        return obs

    def detected(self, tests: List[ScanTest], faults: List[Fault]) -> set:
        references = [self.observations(t) for t in tests]
        hits = set()
        for fault in faults:
            for test, ref in zip(tests, references):
                if self.observations(test, fault) != ref:
                    hits.add(fault)
                    break
        return hits


def random_tests(circuit: Circuit, seed: int, n_tests: int = 3) -> List[ScanTest]:
    """Random tests with random limited-scan schedules (k = 0..N_SV)."""
    src = make_source(seed)
    n_sv = circuit.num_state_vars
    tests = []
    for _ in range(n_tests):
        length = 3 + src.mod_draw(3)
        schedule = [(0, ())]
        for _u in range(1, length):
            k = src.mod_draw(n_sv + 1)
            schedule.append((k, tuple(src.bits(k))))
        tests.append(
            ScanTest(
                si=src.bits(n_sv),
                vectors=[src.bits(circuit.num_inputs) for _ in range(length)],
                schedule=schedule,
            )
        )
    return tests


def random_case(seed: int) -> Tuple[Circuit, List[ScanTest]]:
    circuit = synthesize(
        SyntheticSpec(
            name=f"diff{seed}",
            n_pi=3 + seed % 3,
            n_po=2,
            n_ff=3 + seed % 2,
            n_gates=22 + seed % 7,
            seed=1000 + seed,
        )
    )
    return circuit, random_tests(circuit, seed=seed * 7 + 1)


@pytest.mark.parametrize("seed", range(20))
def test_three_way_detection_sets_identical(seed):
    """compiled serial == sharded parallel == event-sim oracle."""
    circuit, tests = random_case(seed)
    graph = FaultGraph(circuit)
    faults = collapse_faults(circuit)
    sim = FaultSimulator(graph)

    compiled = set(sim.simulate(tests, faults))
    with sim.sharded(2) as psim:
        sharded = set(psim.simulate(tests, faults))
    oracle = EventSimFaultOracle(graph).detected(tests, faults)

    assert sharded == compiled
    assert oracle == compiled


def test_oracle_catches_an_injected_discrepancy():
    """The harness is not vacuous: corrupting one schedule changes the
    oracle's observation stream."""
    circuit, tests = random_case(3)
    oracle = EventSimFaultOracle(FaultGraph(circuit))
    baseline = oracle.observations(tests[0])
    corrupted = ScanTest(
        si=list(tests[0].si),
        vectors=[list(v) for v in tests[0].vectors],
        schedule=[(0, ())] * tests[0].length,
    )
    # With every limited scan stripped, some case must differ; pick a
    # test whose schedule actually shifts.
    shifted = [t for t in tests if t.total_shift_cycles > 0]
    if shifted:
        t = shifted[0]
        stripped = ScanTest(
            si=list(t.si),
            vectors=[list(v) for v in t.vectors],
            schedule=[(0, ())] * t.length,
        )
        assert oracle.observations(stripped) != oracle.observations(t)
    else:  # pragma: no cover - seeds above guarantee shifts
        assert baseline == oracle.observations(corrupted)


# ----------------------------------------------------------------------
# Persistent-pool differential suite: the batched candidate evaluator
# (in-process and through the worker pool) and the legacy sharded
# simulator must reproduce the serial ``simulate_grouped`` result --
# same detections, same insertion order -- on every seeded case.
# ----------------------------------------------------------------------
import dataclasses
import json

from repro.core.config import BistConfig
from repro.core.limited_scan import build_limited_scan_test_set
from repro.core.procedure2 import run_procedure2
from repro.core.test_set import generate_ts0
from repro.experiments.serialize import result_to_dict
from repro.faults.pool import CandidateEvaluator


def _pool_case(seed: int):
    circuit = synthesize(
        SyntheticSpec(
            name=f"pooldiff{seed}",
            n_pi=3 + seed % 3,
            n_po=2,
            n_ff=3 + seed % 2,
            n_gates=22 + seed % 7,
            seed=2000 + seed,
        )
    )
    cfg = BistConfig(la=4, lb=8, n=4)
    ts0 = generate_ts0(circuit, cfg)
    faults = collapse_faults(circuit)
    return circuit, cfg, ts0, faults


@pytest.mark.parametrize("seed", range(20))
def test_pool_vs_serial_vs_sharded_identical(seed):
    """Candidate tables from the pool evaluator == serial == sharded."""
    circuit, cfg, ts0, faults = _pool_case(seed)
    sim = FaultSimulator(circuit)
    n_sv = circuit.num_state_vars
    specs = [(0, None)] + [(1, d1) for d1 in cfg.d1_values[:3]]
    built = {
        spec: (
            ts0 if spec[1] is None
            else build_limited_scan_test_set(ts0, spec[0], spec[1], cfg, n_sv)
        )
        for spec in specs
    }

    serial = {
        spec: sim.simulate_grouped(tests, faults)
        for spec, tests in built.items()
    }

    pooled_cfg = dataclasses.replace(
        cfg, n_jobs=2, pool="persistent", candidate_batch=len(specs)
    )
    evaluator = CandidateEvaluator(
        sim, ts0, pooled_cfg, n_sv, None,
        n_jobs=2, targets=faults, circuit_name=circuit.name,
    )
    try:
        tables = evaluator.evaluate_specs(specs, faults)
        for spec, table in zip(specs, tables):
            hits = table.hits_for(faults)
            # Content AND insertion order must match the serial call.
            assert list(hits.items()) == list(serial[spec].items())
    finally:
        evaluator.close()

    with sim.sharded(2) as psim:
        for spec, tests in built.items():
            sharded = psim.simulate_grouped(tests, faults)
            assert set(sharded) == set(serial[spec])


class TestProcedure2PoolByteIdentity:
    """Full Procedure 2 byte-identity across the n_jobs x batch grid."""

    CFG = BistConfig(la=4, lb=8, n=16, n_same_fc=2, max_iterations=6)
    GRID = [(1, 1), (1, 8), (2, 1), (2, 8), (4, 1), (4, 8)]

    def _run(self, circuit, faults, cfg, checkpoint=None):
        result = run_procedure2(circuit, cfg, faults, checkpoint=checkpoint)
        return json.dumps(result_to_dict(result), sort_keys=True)

    def test_result_blob_identical_across_grid(self, s27):
        faults = collapse_faults(s27)
        baseline = self._run(s27, faults, self.CFG)
        for jobs, batch in self.GRID:
            cfg = dataclasses.replace(
                self.CFG, n_jobs=jobs, pool="persistent",
                candidate_batch=batch,
            )
            assert self._run(s27, faults, cfg) == baseline, (
                f"n_jobs={jobs} candidate_batch={batch} diverged"
            )

    def test_journal_bytes_identical_across_grid(self, s27, tmp_path):
        faults = collapse_faults(s27)
        ref_path = tmp_path / "serial.jsonl"
        self._run(s27, faults, self.CFG, checkpoint=str(ref_path))
        reference = ref_path.read_bytes()
        for jobs, batch in [(2, 8), (4, 1), (4, 8)]:
            path = tmp_path / f"pool_{jobs}_{batch}.jsonl"
            cfg = dataclasses.replace(
                self.CFG, n_jobs=jobs, pool="persistent",
                candidate_batch=batch,
            )
            self._run(s27, faults, cfg, checkpoint=str(path))
            assert path.read_bytes() == reference, (
                f"journal diverged at n_jobs={jobs} batch={batch}"
            )

    def test_legacy_sharded_mode_still_matches(self, s27):
        faults = collapse_faults(s27)
        baseline = self._run(s27, faults, self.CFG)
        cfg = dataclasses.replace(self.CFG, n_jobs=2, pool="sharded")
        assert self._run(s27, faults, cfg) == baseline
