"""Seeded property tests: parse(write(c)) == c across random circuits.

A lightweight property harness (no hypothesis dependency): each property
runs over a sweep of seeded random circuits from the fuzz generator and
the synthetic builder, covering DFF scan order, INV/BUFF aliases, and
encoding perturbations for both the .bench and Verilog round-trips.
"""

import numpy as np
import pytest

from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.circuit.bench_parser import parse_bench, write_bench
from repro.circuit.verilog import parse_verilog, write_verilog
from repro.fuzz.generator import GeneratorSpace, generate_bench
from repro.fuzz.oracles import verilog_safe

SEEDS = range(25)


def rng_for(seed):
    return np.random.Generator(np.random.PCG64(seed))


def random_circuit(seed):
    space = GeneratorSpace(p_weird=0.0, n_gates=(2, 60), n_ff=(0, 8))
    return parse_bench(generate_bench(rng_for(seed), space))


class TestBenchRoundtrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_circuits(self, seed):
        c = random_circuit(seed)
        back = parse_bench(write_bench(c), name=c.name)
        assert c.structurally_equal(back)
        assert write_bench(back) == write_bench(c)

    @pytest.mark.parametrize("seed", range(8))
    def test_synthetic_circuits(self, seed):
        spec = SyntheticSpec(
            name=f"prop{seed}", n_pi=4 + seed, n_po=2, n_ff=seed % 5,
            n_gates=20 + 7 * seed, seed=seed,
        )
        c = synthesize(spec)
        back = parse_bench(write_bench(c), name=c.name)
        assert c.structurally_equal(back)

    def test_scan_order_preserved(self):
        text = (
            "INPUT(a)\nOUTPUT(x)\n"
            "q2 = DFF(q1)\nq1 = DFF(q0)\nq0 = DFF(a)\n"
            "x = AND(q0, q2)\n"
        )
        c = parse_bench(text)
        assert c.state_vars == ["q2", "q1", "q0"]  # file order, not topo
        back = parse_bench(write_bench(c))
        assert back.state_vars == c.state_vars
        assert [f.d for f in back.flops] == [f.d for f in c.flops]

    def test_alias_normalization_is_stable(self):
        """INV/BUFF normalize to NOT/BUF once, then reach a fixpoint."""
        text = "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = INV(a)\nz = BUFF(a)\n"
        c = parse_bench(text)
        once = write_bench(c)
        assert "NOT(a)" in once and "BUF(a)" in once
        assert write_bench(parse_bench(once)) == once

    @pytest.mark.parametrize("seed", range(10))
    def test_encoding_perturbations_equivalent(self, seed):
        c = random_circuit(seed)
        text = write_bench(c)
        for variant in (
            "\ufeff" + text,
            text.replace("\n", "\r\n"),
            text.rstrip("\n"),
        ):
            assert parse_bench(variant).structurally_equal(c)


class TestVerilogRoundtrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_circuits(self, seed):
        c = random_circuit(seed)
        if not verilog_safe(c):
            pytest.skip("net names do not survive the Verilog dialect")
        back = parse_verilog(write_verilog(c))
        assert c.structurally_equal(back)

    def test_clock_name_collision_avoided(self):
        """A net named ``clk`` must not collide with the emitted clock port."""
        text = "INPUT(clk)\nOUTPUT(x)\nq = DFF(clk)\nx = AND(q, clk)\n"
        c = parse_bench(text)
        v = write_verilog(c)
        ports = v.split("(", 1)[1].split(")", 1)[0].split(",")
        names = [p.strip() for p in ports]
        assert len(names) == len(set(names)), f"duplicate ports in {names}"

    def test_zero_input_circuit_writes_valid_verilog(self):
        c = parse_bench("x = CONST1()\nOUTPUT(x)\n")
        v = write_verilog(c)
        assert "input ;" not in v
