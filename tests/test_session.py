"""Tests for the high-level session API."""

import pytest

from repro.bench_circuits import load_circuit
from repro.core.config import BistConfig
from repro.core.parameter_selection import ParameterCombo
from repro.core.session import LimitedScanBist
from repro.faults.collapse import collapse_faults


@pytest.fixture(scope="module")
def s27_bist():
    return LimitedScanBist(load_circuit("s27"), config=BistConfig(la=4, lb=8, n=8))


class TestLimitedScanBist:
    def test_target_faults_are_detectable_subset(self, s27_bist):
        targets = s27_bist.target_faults
        collapsed = collapse_faults(s27_bist.circuit)
        assert set(targets) <= set(collapsed)
        assert len(targets) == 32  # s27: everything detectable

    def test_explicit_targets_bypass_classification(self):
        circuit = load_circuit("s27")
        faults = collapse_faults(circuit)[:5]
        bist = LimitedScanBist(circuit, target_faults=faults)
        assert bist.target_faults == faults

    def test_run_with_length_overrides(self, s27_bist):
        res = s27_bist.run(4, 8, 4)
        assert res.config.la == 4 and res.config.n == 4
        res2 = s27_bist.run(n=16)
        assert res2.config.n == 16 and res2.config.la == 4

    def test_first_complete_returns_complete(self, s27_bist):
        report = s27_bist.first_complete(max_combos=5)
        assert report.result.complete
        assert report.combos_tried >= 1
        assert report.circuit_name == "s27"

    def test_first_complete_uses_cheapest_first(self, s27_bist):
        report = s27_bist.first_complete(max_combos=5)
        # The chosen combo's Ncyc0 equals the formula for its values.
        from repro.core.cost import ncyc0

        c = report.combo
        assert c.ncyc0 == ncyc0(3, c.la, c.lb, c.n)

    def test_first_complete_custom_combos(self, s27_bist):
        combos = [ParameterCombo(la=4, lb=8, n=8, ncyc0=0)]
        report = s27_bist.first_complete(combos=combos)
        assert report.combo is combos[0]

    def test_first_complete_incomplete_flagged(self):
        """With an undetectable target fault, no combo is complete; the
        best result must come back flagged, not raise."""
        from repro.circuit.library import GateType
        from repro.circuit.netlist import Circuit
        from repro.faults.model import Fault

        c = Circuit("red")
        c.add_input("a")
        c.add_input("b")
        c.add_output("z")
        c.add_gate("t", GateType.AND, ["a", "b"])
        c.add_gate("z", GateType.OR, ["a", "t"])
        c.add_flop("q", "z")
        bist = LimitedScanBist(
            c,
            config=BistConfig(la=2, lb=4, n=2, n_same_fc=1, max_iterations=2),
            target_faults=[Fault(site="t", value=0)],
        )
        report = bist.first_complete(max_combos=2)
        assert not report.result.complete

    def test_empty_combos_rejected(self, s27_bist):
        with pytest.raises(ValueError):
            s27_bist.first_complete(combos=[])

    def test_report_row_renders(self, s27_bist):
        report = s27_bist.first_complete(max_combos=5)
        row = report.row()
        assert "s27" in row

    def test_analyze_shares_session_cache(self, tmp_path):
        from repro.circuit.cache import CompileCache

        cache = CompileCache(tmp_path)
        bist = LimitedScanBist(load_circuit("s27"), cache=cache)
        cold = bist.analyze()
        assert not cold.cache_hit
        assert len(cold.faults) == len(collapse_faults(bist.circuit))
        warm = bist.analyze()
        assert warm.cache_hit
        assert cold.num_rpr == warm.num_rpr

    def test_analyze_threshold_override(self, s27_bist):
        assert s27_bist.analyze(rpr_threshold=1.0).num_rpr == 32
        assert s27_bist.analyze().num_rpr == 0
