"""Deterministic fault-injection tests for worker-pool recovery.

Every recovery path of :class:`ShardedFaultSimulator` -- worker crash,
hung worker, corrupted shard payload, ordinary task exception, retry
exhaustion, unconstructible pool -- is forced on demand with a
:class:`ChaosPlan` and must end in the bit-exact serial result plus a
structured :class:`DegradationReport` describing what happened.

All tests here are marked ``chaos`` (run with ``-m chaos``); they fork
real worker processes and some deliberately kill them.
"""

import json

import pytest

from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.core.config import BistConfig
from repro.core.procedure2 import run_procedure2
from repro.experiments.serialize import result_to_dict
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator
from repro.faults.sharding import RecoveryPolicy, ShardedFaultSimulator
from repro.robustness.chaos import ChaosError, ChaosPlan, execute_injected
from repro.robustness.degradation import DegradationReport, ShardEvent
from tests.test_fault_sim_grouped import mixed_tests

pytestmark = pytest.mark.chaos

#: No backoff sleeps and no timeout: chaos tests should be fast.
FAST = dict(shard_timeout=None, max_retries=2, backoff_base=0.0)


@pytest.fixture(scope="module")
def rig():
    """Circuit with > 128 faults (real multi-shard runs), plus oracle."""
    circuit = synthesize(
        SyntheticSpec(name="mini208", n_pi=10, n_po=1, n_ff=8, n_gates=96,
                      seed=5)
    )
    sim = FaultSimulator(circuit)
    faults = collapse_faults(circuit)
    assert len(faults) > 128  # >= 3 words: at least 3 real shards
    tests = mixed_tests(circuit, 11)
    return circuit, sim, faults, tests, sim.simulate(tests, faults)


class TestChaosPlan:
    def test_action_precedence_and_gating(self):
        plan = ChaosPlan(
            crash_shards=(0,), hang_shards=(0, 1), corrupt_shards=(1, 2),
            error_shards=(3,), dispatches=(0, 2), fire_attempts=2,
        )
        assert plan.action(0, 0, 0) == "crash"   # crash beats hang
        assert plan.action(0, 1, 0) == "hang"    # hang beats corrupt
        assert plan.action(0, 2, 0) == "corrupt"
        assert plan.action(0, 3, 0) == "error"
        assert plan.action(0, 4, 0) is None      # un-named shard
        assert plan.action(1, 0, 0) is None      # dispatch not in plan
        assert plan.action(2, 0, 1) == "crash"   # attempt 1 < fire_attempts
        assert plan.action(2, 0, 2) is None      # attempts exhausted

    def test_default_plan_is_every_dispatch_once(self):
        plan = ChaosPlan(error_shards=(1,))
        assert plan.action(7, 1, 0) == "error"
        assert plan.action(7, 1, 1) is None

    def test_execute_injected_error_and_corrupt(self):
        with pytest.raises(ChaosError):
            execute_injected("error", 0.0, lambda: {})
        corrupted = execute_injected("corrupt", 0.0, lambda: {"real": 1})
        assert "real" not in corrupted
        (fault,) = corrupted
        assert fault.site == "__chaos_corrupt__"
        assert execute_injected(None, 0.0, lambda: 42) == 42


class TestShardRecovery:
    def test_worker_crash_recovers(self, rig):
        _, sim, faults, tests, oracle = rig
        chaos = ChaosPlan(crash_shards=(0,))
        with ShardedFaultSimulator(
            sim, 2, recovery=RecoveryPolicy(**FAST), chaos=chaos
        ) as psim:
            assert psim.simulate(tests, faults) == oracle
            report = psim.degradation
        assert report.degraded
        assert any(e.kind == "crash" for e in report.events)
        assert report.pool_respawns >= 1
        # The retried shard succeeded in the pool; nothing went serial.
        assert all(e.action == "retry" for e in report.events)

    def test_hung_worker_times_out_and_recovers(self, rig):
        _, sim, faults, tests, oracle = rig
        chaos = ChaosPlan(hang_shards=(1,), hang_seconds=60.0)
        recovery = RecoveryPolicy(
            shard_timeout=1.0, max_retries=1, backoff_base=0.0
        )
        with ShardedFaultSimulator(
            sim, 2, recovery=recovery, chaos=chaos
        ) as psim:
            assert psim.simulate(tests, faults) == oracle
            report = psim.degradation
        assert any(e.kind == "timeout" for e in report.events)
        assert report.pool_respawns >= 1

    def test_corrupted_shard_is_rejected_and_retried(self, rig):
        _, sim, faults, tests, oracle = rig
        chaos = ChaosPlan(corrupt_shards=(1,))
        with ShardedFaultSimulator(
            sim, 3, recovery=RecoveryPolicy(**FAST), chaos=chaos
        ) as psim:
            records = psim.simulate(tests, faults)
            report = psim.degradation
        assert records == oracle
        assert not any(f.site == "__chaos_corrupt__" for f in records)
        # Corruption never kills the pool: exactly one clean retry event.
        assert [(e.kind, e.action) for e in report.events] == [
            ("invalid-result", "retry")
        ]
        assert report.pool_respawns == 0

    def test_task_error_is_retried(self, rig):
        _, sim, faults, tests, oracle = rig
        chaos = ChaosPlan(error_shards=(0, 2))
        with ShardedFaultSimulator(
            sim, 3, recovery=RecoveryPolicy(**FAST), chaos=chaos
        ) as psim:
            assert psim.simulate(tests, faults) == oracle
            report = psim.degradation
        assert sorted((e.shard, e.kind, e.action) for e in report.events) == [
            (0, "error", "retry"),
            (2, "error", "retry"),
        ]

    def test_retry_exhaustion_falls_back_to_serial_shard(self, rig):
        _, sim, faults, tests, oracle = rig
        # Fires on every attempt; one parallel retry allowed, then the
        # shard must be rescued serially in the parent.
        chaos = ChaosPlan(error_shards=(1,), fire_attempts=99)
        recovery = RecoveryPolicy(
            shard_timeout=None, max_retries=1, backoff_base=0.0
        )
        with ShardedFaultSimulator(
            sim, 2, recovery=recovery, chaos=chaos
        ) as psim:
            assert psim.simulate(tests, faults) == oracle
            report = psim.degradation
        assert [(e.attempt, e.kind, e.action) for e in report.events] == [
            (0, "error", "retry"),
            (1, "error", "serial"),
        ]

    def test_chaos_run_is_reproducible(self, rig):
        _, sim, faults, tests, oracle = rig
        chaos = ChaosPlan(corrupt_shards=(0,), error_shards=(2,))

        def one_run():
            with ShardedFaultSimulator(
                sim, 3, recovery=RecoveryPolicy(**FAST), chaos=chaos
            ) as psim:
                records = psim.simulate(tests, faults)
                return records, psim.degradation.to_dict()

        first_records, first_report = one_run()
        second_records, second_report = one_run()
        assert first_records == oracle == second_records
        assert first_report == second_report


class TestProcedure2UnderChaos:
    def test_result_byte_identical_and_degradation_attached(self, rig):
        circuit, _, faults, _, _ = rig
        config = BistConfig(la=2, lb=4, n=2, n_same_fc=2, max_iterations=3)
        clean = run_procedure2(circuit, config, faults)
        assert clean.degradation is None

        chaos = ChaosPlan(error_shards=(0,), dispatches=(0, 2))
        sharded = FaultSimulator(circuit).sharded(
            3, recovery=RecoveryPolicy(**FAST), chaos=chaos
        )
        with sharded:
            injected = run_procedure2(
                circuit, config, faults, simulator=sharded
            )
        assert injected.degradation is not None
        assert injected.degradation.degraded
        # The serialized result is execution-independent: no degradation
        # key, and byte-identical to the clean serial run.
        clean_blob = json.dumps(result_to_dict(clean))
        injected_blob = json.dumps(result_to_dict(injected))
        assert "degradation" not in result_to_dict(injected)
        assert injected_blob == clean_blob


class TestDegradationReport:
    def test_report_structure(self):
        report = DegradationReport()
        assert not report.degraded
        assert report.summary() == "no degradation"
        report.record(0, 1, 0, "crash", "retry", "boom")
        report.record(0, 1, 1, "crash", "serial")
        report.pool_respawns = 2
        assert report.degraded
        assert report.counts() == {
            ("crash", "retry"): 1, ("crash", "serial"): 1
        }
        data = report.to_dict()
        assert data["degraded"] and data["pool_respawns"] == 2
        assert data["events"][0] == {
            "dispatch": 0, "shard": 1, "attempt": 0,
            "kind": "crash", "action": "retry", "detail": "boom",
        }
        assert "crash -> serial" in report.render()
        assert "2 pool respawn(s)" in report.summary()

    def test_events_are_immutable(self):
        event = ShardEvent(0, 0, 0, "timeout", "retry")
        with pytest.raises(AttributeError):
            event.kind = "crash"
