"""The job manager end to end: submit, execute, cache, degrade, recover.

Real Procedure 2 runs on s27 with deliberately tiny configurations --
a few seconds of wall clock buys tests against the genuine simulation
stack rather than mocks.
"""

import asyncio
import json

import pytest

from repro.bench_circuits import load_circuit
from repro.circuit.bench_parser import write_bench
from repro.serve.budgets import JobBudget
from repro.serve.errors import ServeError
from repro.serve.jobs import JobManager
from repro.serve.models import DONE, FAILED, PARTIAL, QUEUED
from repro.serve.queue import MultiTenantQueue

pytestmark = pytest.mark.serve

#: Converges in an iteration or two: the fast path.
QUICK = {"n": 8, "max_iterations": 6}


@pytest.fixture(scope="module")
def s27_bench():
    return write_bench(load_circuit("s27"))


def make_manager(tmp_path, **kwargs):
    kwargs.setdefault("budget", JobBudget(wall_s=60, mem_mb=None))
    kwargs.setdefault("queue", MultiTenantQueue(burst=1000))
    return JobManager(tmp_path / "serve", **kwargs)


def run_to_done(manager, body):
    """Submit and drive like the worker loop would: pop, then execute."""
    job = manager.submit(body)
    if not job.terminal:
        popped = manager.queue.pop()
        assert popped == job.job_id
        asyncio.run(manager.execute_one(popped))
    return job


class TestLifecycle:
    def test_submit_execute_done(self, tmp_path, s27_bench):
        manager = make_manager(tmp_path)
        job = manager.submit(
            {"bench": s27_bench, "name": "s27", "config": QUICK}
        )
        assert job.state == QUEUED
        assert not job.cached
        # Everything is already durable: a fresh journal replay sees it.
        assert manager.journal.jobs[job.job_id].submission_key

        asyncio.run(manager.execute_one(job.job_id))
        assert job.state == DONE
        result = manager.result(job.job_id)
        assert result["result"]["complete"] is True
        assert result["partial"] is False
        assert result["session_fingerprint"]

    def test_events_are_replayable(self, tmp_path, s27_bench):
        manager = make_manager(tmp_path)
        job = run_to_done(
            manager, {"bench": s27_bench, "name": "s27", "config": QUICK}
        )
        events = manager.events(job.job_id)
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "submitted"
        assert kinds[-1] == "finished"
        assert "ts0" in kinds and "iteration" in kinds
        assert [e["seq"] for e in events] == list(range(len(events)))
        # since=N resumes the stream exactly.
        assert manager.events(job.job_id, since=2) == events[2:]

    def test_result_before_done_is_409(self, tmp_path, s27_bench):
        manager = make_manager(tmp_path)
        job = manager.submit({"bench": s27_bench, "name": "s27"})
        with pytest.raises(ServeError) as exc:
            manager.result(job.job_id)
        assert exc.value.code == "J002"
        assert exc.value.http_status == 409

    def test_unknown_job_is_404(self, tmp_path):
        manager = make_manager(tmp_path)
        with pytest.raises(ServeError) as exc:
            manager.get("j999999-nope")
        assert exc.value.code == "J001"
        assert exc.value.http_status == 404


class TestResultCache:
    def test_identical_resubmission_is_a_pure_cache_hit(
        self, tmp_path, s27_bench
    ):
        manager = make_manager(tmp_path)
        first = run_to_done(
            manager, {"bench": s27_bench, "name": "s27", "config": QUICK}
        )
        sims = manager.jobs_simulated
        assert sims == 1

        again = manager.submit(
            {"bench": s27_bench, "name": "s27", "config": QUICK}
        )
        # Terminal at submission: no queue slot, no worker, no child.
        assert again.state == DONE
        assert again.cached
        assert manager.jobs_simulated == sims
        assert manager.queue.depth() == 0

        a = manager.result(first.job_id)["result"]
        b = manager.result(again.job_id)["result"]
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_different_config_misses(self, tmp_path, s27_bench):
        manager = make_manager(tmp_path)
        run_to_done(
            manager, {"bench": s27_bench, "name": "s27", "config": QUICK}
        )
        other = manager.submit(
            {"bench": s27_bench, "name": "s27",
             "config": dict(QUICK, base_seed=7)}
        )
        assert other.state == QUEUED  # not served from cache

    def test_different_name_misses(self, tmp_path, s27_bench):
        """Served results embed the circuit name, so the key must too."""
        manager = make_manager(tmp_path)
        run_to_done(
            manager, {"bench": s27_bench, "name": "s27", "config": QUICK}
        )
        other = manager.submit(
            {"bench": s27_bench, "name": "renamed", "config": QUICK}
        )
        assert other.state == QUEUED

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path, s27_bench):
        manager = make_manager(tmp_path)
        job = run_to_done(
            manager, {"bench": s27_bench, "name": "s27", "config": QUICK}
        )
        manager.cache.path_for(job.submission_key).write_text("{torn")
        again = manager.submit(
            {"bench": s27_bench, "name": "s27", "config": QUICK}
        )
        assert again.state == QUEUED  # honest miss, job re-runs


class TestIngestionBoundary:
    def test_parse_garbage_rejected_with_e_code(self, tmp_path):
        manager = make_manager(tmp_path)
        with pytest.raises(ServeError) as exc:
            manager.submit({"bench": "INPUT(g1)\ng2 = FROB(g1)\n"})
        assert exc.value.code.startswith("E")
        assert exc.value.http_status == 422
        assert exc.value.detail["issues"]
        # Nothing was journaled or enqueued for the refused submission.
        assert manager.journal.jobs == {}
        assert manager.queue.depth() == 0

    def test_lint_failure_rejected_with_s_code(
        self, tmp_path, s27_bench, monkeypatch
    ):
        # The hardened parser subsumes every structural ERROR for text
        # input (cycles are E008, redefinitions E006, ...), so the lint
        # gate behind it is defense in depth.  Prove the wiring: a
        # failing report -- however it arises -- refuses with its S code.
        import repro.analysis
        from repro.analysis.report import LintReport
        from repro.analysis.rules import LintIssue, Severity

        failing = LintReport(
            circuit_name="s27",
            issues=[
                LintIssue(
                    rule_id="S001",
                    severity=Severity.ERROR,
                    message="injected structural failure",
                )
            ],
        )
        monkeypatch.setattr(
            repro.analysis, "lint_structural", lambda circuit: failing
        )
        manager = make_manager(tmp_path)
        with pytest.raises(ServeError) as exc:
            manager.submit({"bench": s27_bench, "name": "s27"})
        assert exc.value.code == "S001"
        assert exc.value.http_status == 422
        assert manager.journal.jobs == {}

    def test_unknown_field_rejected(self, tmp_path, s27_bench):
        manager = make_manager(tmp_path)
        with pytest.raises(ServeError) as exc:
            manager.submit({"bench": s27_bench, "nmae": "typo"})
        assert exc.value.code == "C001"

    def test_unknown_config_key_rejected(self, tmp_path, s27_bench):
        manager = make_manager(tmp_path)
        with pytest.raises(ServeError) as exc:
            manager.submit(
                {"bench": s27_bench, "config": {"n_iterations": 5}}
            )
        assert exc.value.code == "C002"
        assert "n_iterations" in str(exc.value)

    def test_invalid_config_value_rejected(self, tmp_path, s27_bench):
        manager = make_manager(tmp_path)
        with pytest.raises(ServeError) as exc:
            manager.submit({"bench": s27_bench, "config": {"la": 99, "lb": 4}})
        assert exc.value.code == "C002"

    def test_bad_targets_rejected(self, tmp_path, s27_bench):
        manager = make_manager(tmp_path)
        with pytest.raises(ServeError) as exc:
            manager.submit({"bench": s27_bench, "targets": "all"})
        assert exc.value.code == "C001"

    def test_chaos_requires_opt_in(self, tmp_path, s27_bench):
        manager = make_manager(tmp_path)  # allow_request_chaos=False
        with pytest.raises(ServeError) as exc:
            manager.submit(
                {"bench": s27_bench, "chaos": {"die_after_commits": 1}}
            )
        assert exc.value.code == "C001"

    def test_queue_shedding_propagates(self, tmp_path, s27_bench):
        manager = make_manager(
            tmp_path, queue=MultiTenantQueue(max_depth=1, burst=1000)
        )
        manager.submit({"bench": s27_bench, "name": "s27", "config": QUICK})
        with pytest.raises(ServeError) as exc:
            manager.submit(
                {"bench": s27_bench, "name": "s27",
                 "config": dict(QUICK, base_seed=9)}
            )
        assert exc.value.code == "Q001"
        assert exc.value.http_status == 429


class TestDegradation:
    def test_worker_death_without_checkpoint_is_failed(
        self, tmp_path, s27_bench
    ):
        manager = make_manager(
            tmp_path, budget=JobBudget(wall_s=60, mem_mb=None, max_retries=0)
        )
        job = manager.submit(
            {"bench": s27_bench, "name": "s27", "config": QUICK}
        )
        # Sabotage the spooled netlist: the child dies before its first
        # checkpoint commit, so there is no partial result to serve.
        (manager.data_dir / job.bench_path).unlink()
        asyncio.run(manager.execute_one(job.job_id))
        assert job.state == FAILED
        assert job.error["code"] == "B003"
        result = manager.result(job.job_id)
        assert result["result"] is None
        assert result["error"]["code"] == "B003"


class TestRecovery:
    def test_queued_job_survives_restart(self, tmp_path, s27_bench):
        manager = make_manager(tmp_path)
        job = manager.submit(
            {"bench": s27_bench, "name": "s27", "config": QUICK}
        )
        job_id = job.job_id

        # A new manager over the same data dir: the journal replays and
        # the job is back in the queue.
        revived = make_manager(tmp_path)
        assert revived.recovered_jobs == 1
        recovered = revived.journal.jobs[job_id]
        assert recovered.state == QUEUED
        asyncio.run(revived.execute_one(job_id))
        assert revived.result(job_id)["result"]["complete"] is True

    def test_running_job_resumes_after_restart(self, tmp_path, s27_bench):
        manager = make_manager(tmp_path)
        job = manager.submit(
            {"bench": s27_bench, "name": "s27", "config": QUICK}
        )
        job.state = "running"
        manager.journal.record_state(job)

        revived = make_manager(tmp_path)
        assert revived.recovered_jobs == 1
        assert revived.journal.jobs[job.job_id].state == QUEUED
        assert revived.queue.depth() == 1

    def test_terminal_jobs_are_not_requeued(self, tmp_path, s27_bench):
        manager = make_manager(tmp_path)
        run_to_done(
            manager, {"bench": s27_bench, "name": "s27", "config": QUICK}
        )
        revived = make_manager(tmp_path)
        assert revived.recovered_jobs == 0
        assert revived.queue.depth() == 0
        # ... and the finished result is still served from disk.
        job_id = next(iter(revived.journal.jobs))
        assert revived.result(job_id)["result"]["complete"] is True


class TestHealthz:
    def test_healthz_shape(self, tmp_path, s27_bench):
        manager = make_manager(tmp_path)
        run_to_done(
            manager, {"bench": s27_bench, "name": "s27", "config": QUICK}
        )
        health = manager.healthz()
        assert health["status"] == "ok"
        assert health["version"]
        assert health["uptime_s"] >= 0
        assert health["jobs"]["done"] == 1
        assert health["jobs_simulated"] == 1
        assert health["queue"]["depth"] == 0
        assert health["result_cache"]["entries"] == 1
        assert health["journal"]["records"] >= 3
