"""Tests for Procedure 2 and its result accounting."""

import dataclasses

import pytest

from repro.atpg.classify import classify_faults
from repro.core.config import BistConfig, D1_DECREASING
from repro.core.cost import ncyc0
from repro.core.procedure2 import resume_procedure2, run_procedure2
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator


@pytest.fixture(scope="module")
def s27_setup():
    from repro.bench_circuits.s27 import s27_circuit

    circuit = s27_circuit()
    return circuit, FaultSimulator(circuit), collapse_faults(circuit)


class TestRunProcedure2:
    def test_s27_reaches_complete_coverage(self, s27_setup):
        circuit, sim, faults = s27_setup
        cfg = BistConfig(la=4, lb=8, n=8)
        res = run_procedure2(circuit, cfg, faults, simulator=sim)
        assert res.complete
        assert res.det_total == len(faults)
        assert res.fault_coverage == 1.0
        assert not res.remaining_faults

    def test_pairs_all_contribute(self, s27_setup):
        circuit, sim, faults = s27_setup
        cfg = BistConfig(la=4, lb=8, n=2)  # small TS0 -> needs pairs
        res = run_procedure2(circuit, cfg, faults, simulator=sim)
        for pair in res.pairs:
            assert pair.newly_detected > 0
            assert pair.d1 in cfg.d1_values
            assert pair.iteration >= 1

    def test_detection_counts_consistent(self, s27_setup):
        circuit, sim, faults = s27_setup
        cfg = BistConfig(la=4, lb=8, n=2)
        res = run_procedure2(circuit, cfg, faults, simulator=sim)
        assert res.det_total == res.ts0_detected + sum(
            p.newly_detected for p in res.pairs
        )
        assert res.det_total == len(res.detections)
        assert res.det_total + len(res.remaining_faults) == len(faults)

    def test_cycle_accounting(self, s27_setup):
        circuit, sim, faults = s27_setup
        cfg = BistConfig(la=4, lb=8, n=4)
        res = run_procedure2(circuit, cfg, faults, simulator=sim)
        base = ncyc0(3, 4, 8, 4)
        assert res.ncyc0 == base
        expect = base + sum(base + p.nsh for p in res.pairs)
        assert res.ncyc_total == expect

    def test_ls_average_range(self, s27_setup):
        circuit, sim, faults = s27_setup
        cfg = BistConfig(la=4, lb=8, n=2)
        res = run_procedure2(circuit, cfg, faults, simulator=sim)
        if res.pairs:
            assert 0.0 < res.ls_average <= 1.0
        else:
            assert res.ls_average is None

    def test_no_pairs_when_ts0_complete(self, s27_setup):
        circuit, sim, faults = s27_setup
        cfg = BistConfig(la=8, lb=64, n=64)  # plenty of random tests
        res = run_procedure2(circuit, cfg, faults, simulator=sim)
        if res.ts0_detected == len(faults):
            assert res.app == 0
            assert res.ncyc_total == res.ncyc0

    def test_gives_up_after_n_same_fc(self, s27_setup):
        """With an impossible target the loop stops via N_SAME_FC."""
        circuit, sim, faults = s27_setup
        from repro.faults.model import Fault

        impossible = [Fault(site="G17", value=0), Fault(site="G17", value=1)]
        # G17 faults ARE detectable; use a truly undetectable marker by
        # targeting a fault in a redundant circuit instead:
        from repro.circuit.library import GateType
        from repro.circuit.netlist import Circuit

        c = Circuit("red")
        c.add_input("a")
        c.add_input("b")
        c.add_output("z")
        c.add_gate("t", GateType.AND, ["a", "b"])
        c.add_gate("z", GateType.OR, ["a", "t"])
        c.add_flop("q", "z")
        target = [Fault(site="t", value=0)]  # undetectable (z == a)
        cfg = BistConfig(la=2, lb=4, n=2, n_same_fc=2, max_iterations=10)
        res = run_procedure2(c, cfg, target)
        assert not res.complete
        assert res.remaining_faults == target
        assert res.iterations_run <= 10

    def test_decreasing_d1_order(self, s27_setup):
        circuit, sim, faults = s27_setup
        cfg = BistConfig(la=4, lb=8, n=2, d1_values=D1_DECREASING)
        res = run_procedure2(circuit, cfg, faults, simulator=sim)
        for pair in res.pairs:
            assert pair.d1 in range(1, 11)

    def test_deterministic(self, s27_setup):
        circuit, sim, faults = s27_setup
        cfg = BistConfig(la=4, lb=8, n=2)
        a = run_procedure2(circuit, cfg, faults, simulator=sim)
        b = run_procedure2(circuit, cfg, faults, simulator=sim)
        assert [(p.iteration, p.d1, p.newly_detected) for p in a.pairs] == [
            (p.iteration, p.d1, p.newly_detected) for p in b.pairs
        ]
        assert a.ncyc_total == b.ncyc_total

    def test_summary_mentions_completeness(self, s27_setup):
        circuit, sim, faults = s27_setup
        cfg = BistConfig(la=4, lb=8, n=8)
        res = run_procedure2(circuit, cfg, faults, simulator=sim)
        assert "complete" in res.summary()


class TestCandidateBias:
    def test_invalid_bias_rejected(self):
        with pytest.raises(ValueError):
            BistConfig(candidate_bias="greedy")

    def test_excluded_from_serialized_config(self):
        # The search order is provenance, not part of the result identity:
        # journal headers and serialized configs must not change with it,
        # so uniform runs stay byte-identical across releases.
        assert (
            BistConfig(candidate_bias="testability").to_dict()
            == BistConfig().to_dict()
        )
        assert "candidate_bias" not in BistConfig().to_dict()

    def test_result_records_bias(self, s27_setup):
        circuit, sim, faults = s27_setup
        for bias in ("uniform", "testability"):
            cfg = BistConfig(la=4, lb=8, n=8, candidate_bias=bias)
            res = run_procedure2(circuit, cfg, faults, simulator=sim)
            assert res.candidate_bias == bias
            assert res.complete

    def test_uniform_results_unchanged_by_flag(self, s27_setup):
        circuit, sim, faults = s27_setup
        implicit = run_procedure2(
            circuit, BistConfig(la=4, lb=8, n=2), faults, simulator=sim
        )
        explicit = run_procedure2(
            circuit,
            BistConfig(la=4, lb=8, n=2, candidate_bias="uniform"),
            faults,
            simulator=sim,
        )
        assert [(p.iteration, p.d1, p.newly_detected) for p in implicit.pairs] == [
            (p.iteration, p.d1, p.newly_detected) for p in explicit.pairs
        ]
        assert implicit.ncyc_total == explicit.ncyc_total

    def test_journal_bytes_identical_across_bias_flag(
        self, s27_setup, tmp_path
    ):
        # Same search outcome (s27's biased order coincides or completes
        # identically is NOT assumed here -- uniform vs uniform only):
        # an explicit "uniform" flag must not leave any trace in the
        # checkpoint journal.
        circuit, sim, faults = s27_setup
        paths = []
        for label, bias in (("a", None), ("b", "uniform")):
            cfg = (
                BistConfig(la=4, lb=8, n=8)
                if bias is None
                else BistConfig(la=4, lb=8, n=8, candidate_bias=bias)
            )
            path = tmp_path / f"{label}.journal"
            run_procedure2(
                circuit, cfg, faults, simulator=sim, checkpoint=str(path)
            )
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert b"candidate_bias" not in paths[0].read_bytes()

    def test_testability_bias_resumes_identically(self, s27_setup, tmp_path):
        # The biased order is re-derived from the circuit on resume, so a
        # replayed journal must reproduce the run exactly.
        circuit, sim, faults = s27_setup
        cfg = BistConfig(la=4, lb=8, n=8, candidate_bias="testability")
        path = str(tmp_path / "bias.journal")
        first = run_procedure2(
            circuit, cfg, faults, simulator=sim, checkpoint=path
        )
        resumed = resume_procedure2(
            circuit, cfg, faults, checkpoint=path, simulator=sim
        )
        assert [(p.iteration, p.d1, p.newly_detected) for p in first.pairs] == [
            (p.iteration, p.d1, p.newly_detected) for p in resumed.pairs
        ]
        assert resumed.candidate_bias == "testability"
