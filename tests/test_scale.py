"""Capacity tests for real-silicon scale.

Covers the struct-of-arrays netlist form (``Circuit.to_arrays`` /
``circuit_from_arrays``), the O(V+E) levelizer on pathologically deep
circuits, the content-addressed compile cache, the circuit fingerprint
it is keyed by, and byte-identity of pooled evaluation on the largest
vendored circuit.
"""

from __future__ import annotations

import pickle
import time

import numpy as np
import pytest

from repro.bench_circuits.catalog import load_circuit
from repro.circuit.cache import CompileCache
from repro.circuit.levelize import levelize, levelize_arrays
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit, circuit_from_arrays
from repro.circuit.stats import circuit_stats
from repro.faults.fault_sim import FaultSimulator
from repro.faults.model import FaultGraph
from repro.robustness.checkpoint import circuit_fingerprint


def not_chain(depth: int, name: str = "chain") -> Circuit:
    """A single NOT chain of ``depth`` gates: worst-case logic depth."""
    c = Circuit(name)
    c.add_input("a")
    prev = "a"
    for i in range(depth):
        out = f"n{i}"
        c.add_gate(out, GateType.NOT, [prev])
        prev = out
    c.add_output(prev)
    return c


#: Fixed key for the concurrent-writer race: both workers hammer the
#: SAME cache entry, which is the collision atomic-replace must survive.
_RACE_FINGERPRINT = "f" * 64


def _cache_race_worker(root: str, tag: str, barrier) -> None:
    """Store/load the shared entry in a tight loop; exit 1 on any tear.

    Module-level (not a closure) so the spawn start method can pickle it.
    """
    cache = CompileCache(root)
    state = {"tag": tag, "payload": list(range(2000))}
    barrier.wait()
    for _ in range(50):
        cache.store(_RACE_FINGERPRINT, state)
        seen = cache.load(_RACE_FINGERPRINT)
        # A load during the race sees a complete payload from one of the
        # writers or (only if replace were non-atomic) a torn entry,
        # which CompileCache.load maps to None -- also a failure here
        # because the file certainly exists by now.
        if (
            seen is None
            or seen["tag"] not in ("a", "b")
            or seen["payload"] != state["payload"]
        ):
            raise SystemExit(1)
    raise SystemExit(0)


class TestDeepChainLevelize:
    """The levelizer must be iterative and near-linear in V+E.

    A 50k-deep chain is the adversarial case: one gate per level.  A
    recursive implementation blows the interpreter stack here, and the
    old frontier-rescan implementation was quadratic (minutes at this
    depth); both failure modes show up as a blown time budget.
    """

    DEPTH = 50_000
    BUDGET_S = 30.0  # ~0.2s measured; quadratic was projected ~10min

    def test_object_form(self):
        c = not_chain(self.DEPTH)
        start = time.perf_counter()
        lev = levelize(c)
        assert time.perf_counter() - start < self.BUDGET_S
        assert lev.depth == self.DEPTH
        assert len(lev.order) == self.DEPTH
        # Strictly one gate per level, in chain order.
        assert [g.output for g in lev.order] == [f"n{i}" for i in range(self.DEPTH)]

    def test_array_form(self):
        arrays = not_chain(self.DEPTH).to_arrays()
        start = time.perf_counter()
        la = levelize_arrays(arrays)
        assert time.perf_counter() - start < self.BUDGET_S
        assert la.depth == self.DEPTH
        # level_of over the chain nets is 1, 2, ..., DEPTH.
        gate_nets = np.arange(1, arrays.n_nets)
        assert np.array_equal(la.level_of[gate_nets], np.arange(1, self.DEPTH + 1))
        assert np.array_equal(la.order, np.arange(self.DEPTH))

    @pytest.mark.parametrize("name", ["s298", "s1423"])
    def test_agrees_with_object_levelize(self, name):
        c = load_circuit(name)
        lev = levelize(c)
        arrays = c.to_arrays()
        la = levelize_arrays(arrays)
        assert la.depth == lev.depth
        index = {n: i for i, n in enumerate(arrays.names)}
        for level_no, gates in enumerate(lev.levels, start=1):
            for gate in gates:
                assert la.level_of[index[gate.output]] == level_no


class TestNetlistArrays:
    @pytest.mark.parametrize("name", ["s27", "s298", "s1423"])
    def test_round_trip_structurally_equal(self, name):
        c = load_circuit(name)
        back = circuit_from_arrays(c.to_arrays())
        assert c.structurally_equal(back)
        assert back.name == c.name

    def test_net_index_order_invariant(self, s27):
        """PIs first, then flop Qs, then gate outputs in insertion
        order; gate ``i`` drives net ``n_pi + n_ff + i``.  The compiled
        model's signal order is derived from this layout, so it is
        pinned here explicitly."""
        arrays = s27.to_arrays()
        assert list(arrays.names[: arrays.n_pi]) == list(s27.inputs)
        assert list(arrays.names[arrays.n_pi : arrays.n_pi + arrays.n_ff]) == [
            f.q for f in s27.flops
        ]
        first_gate = arrays.n_pi + arrays.n_ff
        for i, gate in enumerate(s27.iter_gates()):
            assert arrays.names[first_gate + i] == gate.output
            assert tuple(arrays.gate_fanin(i)) == tuple(
                arrays.names.index(src) for src in gate.inputs
            )

    def test_undriven_net_raises(self):
        c = Circuit("bad")
        c.add_input("a")
        c.add_gate("g", GateType.AND, ["a", "ghost"])
        c.add_output("g")
        with pytest.raises(KeyError, match="undriven"):
            c.to_arrays()

    def test_round_trip_preserves_fingerprint(self, tiny_synth):
        back = circuit_from_arrays(tiny_synth.to_arrays())
        assert circuit_fingerprint(back) == circuit_fingerprint(tiny_synth)


class TestLeanPickle:
    """The compiled graph ships arrays, not object netlists."""

    def test_derived_views_dropped_from_state(self, s27_graph):
        state = s27_graph.model.__getstate__()
        assert state["_circuit"] is None
        assert state["_signal_names"] is None
        assert state["_signal_index"] is None

    def test_unpickled_graph_byte_identical(self, s27):
        from repro.core.config import BistConfig
        from repro.core.test_set import generate_ts0
        from repro.faults.collapse import collapse_faults

        cfg = BistConfig(la=4, lb=8, n=8)
        ts0 = generate_ts0(s27, cfg)
        faults = collapse_faults(s27)
        sim = FaultSimulator(s27)
        clone = pickle.loads(
            pickle.dumps(sim.graph, protocol=pickle.HIGHEST_PROTOCOL)
        )
        sim2 = FaultSimulator(clone)
        a = sim.simulate_grouped(ts0, faults)
        b = sim2.simulate_grouped(ts0, faults)
        assert list(a.items()) == list(b.items())


class TestFingerprint:
    def test_name_independent(self, s27):
        renamed = circuit_from_arrays(s27.to_arrays())
        renamed.name = "something_else"
        assert circuit_fingerprint(renamed) == circuit_fingerprint(s27)

    def test_structure_sensitive(self):
        a = not_chain(4, name="x")
        b = not_chain(5, name="x")
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_gate_type_sensitive(self):
        def one_gate(gtype):
            c = Circuit("g")
            c.add_input("a")
            c.add_input("b")
            c.add_gate("o", gtype, ["a", "b"])
            c.add_output("o")
            return c

        assert circuit_fingerprint(one_gate(GateType.AND)) != circuit_fingerprint(
            one_gate(GateType.NAND)
        )


class TestCompileCache:
    def test_cold_miss_then_warm_hit(self, tmp_path, s27):
        cache = CompileCache(tmp_path)
        g1 = FaultGraph(s27, cache=cache)
        assert not g1.cache_hit
        assert (cache.misses, cache.hits) == (1, 0)
        g2 = FaultGraph(s27, cache=cache)
        assert g2.cache_hit
        assert (cache.misses, cache.hits) == (1, 1)

    def test_cached_graph_byte_identical(self, tmp_path, s27):
        from repro.core.config import BistConfig
        from repro.core.test_set import generate_ts0
        from repro.faults.collapse import collapse_faults

        cfg = BistConfig(la=4, lb=8, n=8)
        ts0 = generate_ts0(s27, cfg)
        faults = collapse_faults(s27)
        cache = CompileCache(tmp_path)
        cold = FaultSimulator(FaultGraph(s27, cache=cache))
        warm = FaultSimulator(FaultGraph(s27, cache=cache))
        assert warm.graph.cache_hit
        assert list(cold.simulate_grouped(ts0, faults).items()) == list(
            warm.simulate_grouped(ts0, faults).items()
        )

    def test_corrupt_entry_is_a_miss_and_heals(self, tmp_path, s27):
        cache = CompileCache(tmp_path)
        FaultGraph(s27, cache=cache)
        path = cache.path_for(cache.fingerprint(s27))
        path.write_bytes(b"not a pickle")
        g = FaultGraph(s27, cache=cache)
        assert not g.cache_hit
        assert cache.misses == 2
        # The recompile overwrote the torn entry; next load hits.
        assert FaultGraph(s27, cache=cache).cache_hit

    def test_entry_path_carries_format_version(self, tmp_path, s27):
        cache = CompileCache(tmp_path)
        path = cache.path_for(cache.fingerprint(s27))
        assert path.name.endswith(f".v{CompileCache.FORMAT_VERSION}.pkl")

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert CompileCache.from_env() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = CompileCache.from_env()
        assert cache is not None and cache.root == tmp_path

    def test_concurrent_writers_same_fingerprint(self, tmp_path):
        """Two processes racing the same entry both succeed, no torn reads.

        The cache is shared per machine (``REPRO_CACHE_DIR``), so two
        sessions compiling the same circuit concurrently is the normal
        cold-start case, not an edge case.  Atomic replace means every
        load observes either a miss or one writer's complete payload --
        never a mix -- and neither writer errors.
        """
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(
                target=_cache_race_worker,
                args=(str(tmp_path), tag, barrier),
            )
            for tag in ("a", "b")
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        assert [p.exitcode for p in procs] == [0, 0]
        # The surviving entry is whichever store landed last -- complete
        # and well-formed either way.
        state = CompileCache(tmp_path).load(_RACE_FINGERPRINT)
        assert state is not None
        assert state["tag"] in ("a", "b")
        assert state["payload"] == list(range(2000))


class TestWhereStringCanonicalization:
    def test_single_canonical_object_per_observation_point(self):
        """Every path that builds a ``DetectionRecord`` must end up with
        the interpreter-interned ``where`` object.  Hyphenated literals
        are not auto-interned, so without a choke point the serial
        recorder, the pool's row canonicalization, and the shard merge
        each hold their own equal-but-distinct copy -- and a result
        mixing them pickles with a different memo structure than a
        serial result sharing one object (seen as a byte-identity
        failure on s13207, where TS0 goes through the in-process path
        while winner pairs come back from pool workers)."""
        import sys

        from repro.faults.fault_sim import DetectionRecord
        from repro.faults.pool import _WHERE_CANON

        for where in ("po", "limited-scan", "scan-out"):
            fresh = "-".join(where.split("-"))  # equal, not interned
            rec = DetectionRecord(
                fault=None, test_index=0, time_unit=0, where=fresh
            )
            assert rec.where is sys.intern(where)
            assert _WHERE_CANON[where] is sys.intern(where)


class TestStatsPOFanout:
    def test_po_tap_counts_toward_fanout(self):
        """Regression: a PO tap loads its net.  Here g1 feeds both g2
        and a PO (fanout 2); before the fix the PO tap was invisible and
        max_fanout reported 1."""
        c = Circuit("potap")
        c.add_input("a")
        c.add_gate("g1", GateType.NOT, ["a"])
        c.add_gate("g2", GateType.NOT, ["g1"])
        c.add_output("g1")
        c.add_output("g2")
        assert circuit_stats(c).max_fanout == 2


@pytest.mark.slow
class TestLargestCircuitPoolRoundTrip:
    """Pooled candidate evaluation on the largest vendored circuit.

    The pool ships the compiled graph to workers through shared memory;
    at s38417 scale that is a multi-megabyte payload, which is exactly
    where a subtle serialization bug would corrupt results.  The pooled
    tables must match the serial simulator bit for bit, including
    insertion order.
    """

    def test_s38417_pool_matches_serial(self):
        import dataclasses

        from repro.core.config import BistConfig
        from repro.core.limited_scan import build_limited_scan_test_set
        from repro.core.test_set import generate_ts0
        from repro.faults.collapse import collapse_faults
        from repro.faults.pool import CandidateEvaluator

        circuit = load_circuit("s38417")
        cfg = BistConfig(la=8, lb=16, n=8)
        ts0 = generate_ts0(circuit, cfg)
        # A fault subset keeps this within smoke-test runtime while
        # still exercising the full-size compiled payload.
        faults = collapse_faults(circuit)[:512]
        sim = FaultSimulator(circuit)
        n_sv = circuit.num_state_vars
        specs = [(0, None), (1, cfg.d1_values[0])]
        serial = {
            spec: sim.simulate_grouped(
                ts0 if spec[1] is None
                else build_limited_scan_test_set(ts0, spec[0], spec[1], cfg, n_sv),
                faults,
            )
            for spec in specs
        }
        pooled_cfg = dataclasses.replace(
            cfg, n_jobs=2, pool="persistent", candidate_batch=len(specs)
        )
        evaluator = CandidateEvaluator(
            sim, ts0, pooled_cfg, n_sv, None,
            n_jobs=2, targets=faults, circuit_name=circuit.name,
        )
        try:
            tables = evaluator.evaluate_specs(specs, faults)
            for spec, table in zip(specs, tables):
                hits = table.hits_for(faults)
                assert list(hits.items()) == list(serial[spec].items())
                # Byte-identity, aliasing included: pooled records must
                # intern the caller's fault objects, not keep the equal
                # copies that crossed the worker boundary (pickle bytes
                # see the difference even when every comparison passes).
                assert pickle.dumps(hits) == pickle.dumps(serial[spec])
        finally:
            evaluator.close()
