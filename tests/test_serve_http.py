"""The HTTP surface, end to end: a real server on a real socket.

The server runs in a side thread with its own event loop and an
injected stop event (signal handlers only install on the main
thread).  Readiness comes from the atomically written port file, the
same mechanism ``repro serve --healthz`` and the smoke gate use.
"""

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.bench_circuits import load_circuit
from repro.circuit.bench_parser import write_bench
from repro.serve.budgets import JobBudget
from repro.serve.client import ServeClient
from repro.serve.errors import ServeError
from repro.serve.jobs import JobManager
from repro.serve.queue import MultiTenantQueue
from repro.serve.server import serve_forever

pytestmark = pytest.mark.serve

QUICK = {"n": 8, "max_iterations": 6}


class ServerThread:
    """Hosts serve_forever in a daemon thread; stops it threadsafe."""

    def __init__(self, manager):
        self.manager = manager
        self.loop = None
        self.stop_event = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.error = None

    def _run(self):
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        self.stop_event = asyncio.Event()
        try:
            self.loop.run_until_complete(
                serve_forever(
                    self.manager,
                    port=0,
                    workers=1,
                    port_file=self.manager.data_dir / "serve.port",
                    stop=self.stop_event,
                )
            )
        except Exception as exc:  # pragma: no cover - surfaced in stop()
            self.error = exc
        finally:
            self.loop.close()

    def start(self, timeout_s=10.0):
        self.thread.start()
        port_file = self.manager.data_dir / "serve.port"
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if port_file.exists():
                return int(port_file.read_text().strip())
            if not self.thread.is_alive():
                raise RuntimeError(f"server died during startup: {self.error}")
            time.sleep(0.02)
        raise TimeoutError("server did not write its port file")

    def stop(self):
        if self.loop is not None and self.stop_event is not None:
            self.loop.call_soon_threadsafe(self.stop_event.set)
        self.thread.join(timeout=10.0)
        if self.error is not None:
            raise self.error


@pytest.fixture(scope="module")
def s27_bench():
    return write_bench(load_circuit("s27"))


@pytest.fixture()
def served(tmp_path):
    manager = JobManager(
        tmp_path / "serve",
        queue=MultiTenantQueue(burst=1000),
        budget=JobBudget(wall_s=60, mem_mb=None),
    )
    server = ServerThread(manager)
    port = server.start()
    client = ServeClient(port=port, timeout_s=30.0)
    yield client, manager
    server.stop()


def _raw_request(client, payload: bytes) -> dict:
    """Speak raw HTTP for the malformed-input cases."""
    conn = http.client.HTTPConnection(
        client.host, client.port, timeout=10.0
    )
    try:
        conn.request(
            "POST", "/jobs", body=payload,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        body = json.loads(response.read().decode("utf-8"))
        return {"status": response.status, "body": body}
    finally:
        conn.close()


class TestHappyPath:
    def test_healthz(self, served):
        client, _ = served
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["queue"]["depth"] == 0

    def test_submit_wait_result(self, served, s27_bench):
        client, manager = served
        job = client.submit(s27_bench, name="s27", config=QUICK)
        assert job["job_id"].startswith("j")
        final = client.wait(job["job_id"], timeout_s=60.0)
        assert final["state"] == "done"
        result = client.result(job["job_id"])
        assert result["result"]["complete"] is True
        assert manager.jobs_simulated == 1

    def test_cached_resubmission_over_http(self, served, s27_bench):
        client, manager = served
        first = client.submit(s27_bench, name="s27", config=QUICK)
        client.wait(first["job_id"], timeout_s=60.0)
        again = client.submit(s27_bench, name="s27", config=QUICK)
        assert again["state"] == "done"
        assert again["cached"] is True
        assert manager.jobs_simulated == 1
        a = client.result(first["job_id"])["result"]
        b = client.result(again["job_id"])["result"]
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_events_stream_with_since(self, served, s27_bench):
        client, _ = served
        job = client.submit(s27_bench, name="s27", config=QUICK)
        client.wait(job["job_id"], timeout_s=60.0)
        events = client.events(job["job_id"])
        assert events[0]["kind"] == "submitted"
        assert events[-1]["kind"] == "finished"
        tail = client.events(job["job_id"], since=events[2]["seq"])
        assert tail == events[2:]

    def test_jobs_listing(self, served, s27_bench):
        client, _ = served
        client.submit(s27_bench, name="s27", config=QUICK)
        listed = client.jobs()
        assert len(listed) == 1
        assert listed[0]["circuit"] == "s27"


class TestErrorSurface:
    def test_unknown_job_404(self, served):
        client, _ = served
        with pytest.raises(ServeError) as exc:
            client.status("j999999-nope")
        assert exc.value.code == "J001"
        assert exc.value.http_status == 404

    def test_result_before_done_409(self, served, s27_bench):
        client, _ = served
        # Slow config so the result endpoint races ahead of the worker.
        job = client.submit(
            s27_bench, name="s27",
            config={"n": 1, "la": 2, "lb": 4, "max_iterations": 8},
        )
        try:
            client.result(job["job_id"])
        except ServeError as exc:
            assert exc.code == "J002"
            assert exc.http_status == 409
        # (If the worker won the race the result is simply served; both
        # outcomes are correct, the refusal path is what's under test.)
        client.wait(job["job_id"], timeout_s=60.0)

    def test_parse_error_422_with_envelope(self, served):
        client, _ = served
        with pytest.raises(ServeError) as exc:
            client.submit("INPUT(a)\nb = FROB(a)\n")
        assert exc.value.code.startswith("E")
        assert exc.value.http_status == 422
        assert exc.value.detail["issues"]

    def test_no_route_404(self, served):
        client, _ = served
        with pytest.raises(ServeError) as exc:
            client._request("GET", "/nope")
        assert exc.value.http_status == 404

    def test_method_not_allowed_405(self, served):
        client, _ = served
        with pytest.raises(ServeError) as exc:
            client._request("DELETE", "/jobs")
        assert exc.value.http_status == 405

    def test_bad_json_400(self, served):
        client, _ = served
        reply = _raw_request(client, b"{not json")
        assert reply["status"] == 400
        assert reply["body"]["error"]["code"] == "C001"

    def test_non_object_body_400(self, served):
        client, _ = served
        reply = _raw_request(client, b"[1, 2, 3]")
        assert reply["status"] == 400
        assert "object" in reply["body"]["error"]["message"]

    def test_oversized_body_413(self, served):
        client, _ = served
        conn = http.client.HTTPConnection(
            client.host, client.port, timeout=10.0
        )
        try:
            # Lie about the length: the server must refuse on the header
            # alone, before any buffering.
            conn.request(
                "POST", "/jobs", body=b"",
                headers={"Content-Length": str(64 * 1024 * 1024)},
            )
            response = conn.getresponse()
            assert response.status == 413
        finally:
            conn.close()

    def test_rate_limited_429_with_retry_after(self, tmp_path, s27_bench):
        manager = JobManager(
            tmp_path / "serve",
            queue=MultiTenantQueue(rate_per_s=0.001, burst=1.0),
            budget=JobBudget(wall_s=60, mem_mb=None),
        )
        server = ServerThread(manager)
        port = server.start()
        try:
            client = ServeClient(port=port, timeout_s=30.0)
            client.submit(s27_bench, name="s27", config=QUICK)
            with pytest.raises(ServeError) as exc:
                client.submit(
                    s27_bench, name="s27",
                    config=dict(QUICK, base_seed=5),
                )
            assert exc.value.code == "Q002"
            assert exc.value.http_status == 429
            assert exc.value.detail["retry_after_s"] > 0
        finally:
            server.stop()
