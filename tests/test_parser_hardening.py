"""Hardened .bench parser: stable error codes, multi-error collection,
column context, and encoding/edge-case tolerance."""

import pytest

from repro.circuit.bench_parser import (
    BenchParseError,
    BenchParseIssue,
    parse_bench,
    write_bench,
)


def codes_of(excinfo) -> list:
    return excinfo.value.codes


class TestErrorCodes:
    def test_syntax_error(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("INPUT(a)\nOUTPUT(x)\nthis is junk\nx = NOT(a)\n")
        assert "E001" in codes_of(e)

    def test_unknown_gate(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("INPUT(a)\nOUTPUT(x)\nx = FROB(a)\n")
        assert "E002" in codes_of(e)
        assert "unknown gate type" in str(e.value)

    def test_dff_arity(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)\n")
        assert "E003" in codes_of(e)
        assert "DFF" in str(e.value)

    def test_gate_arity(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("INPUT(a)\nOUTPUT(x)\nx = AND(a)\n")
        assert "E003" in codes_of(e)

    def test_duplicate_input(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("INPUT(a)\nINPUT(a)\nOUTPUT(x)\nx = NOT(a)\n")
        assert "E004" in codes_of(e)
        assert "first on line 1" in str(e.value)

    def test_duplicate_output(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("INPUT(a)\nOUTPUT(x)\nOUTPUT(x)\nx = NOT(a)\n")
        assert "E005" in codes_of(e)

    def test_redefined_net(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench(
                "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nx = NOT(a)\nx = NOT(b)\n"
            )
        assert "E006" in codes_of(e)

    def test_input_redefined_by_gate(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("INPUT(a)\nOUTPUT(x)\na = NOT(x)\nx = NOT(a)\n")
        assert "E006" in codes_of(e)

    def test_undriven_reference(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("INPUT(a)\nOUTPUT(x)\nx = AND(a, ghost)\n")
        assert "E007" in codes_of(e)
        assert "ghost" in str(e.value)

    def test_undriven_output_declaration(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("INPUT(a)\nOUTPUT(x)\nOUTPUT(a)\n")
        assert "E007" in codes_of(e)

    def test_self_loop(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("INPUT(a)\nOUTPUT(x)\nx = AND(x, a)\n")
        assert "E008" in codes_of(e)
        assert "self-loop" in str(e.value)

    def test_combinational_cycle(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench(
                "INPUT(a)\nOUTPUT(x)\nx = AND(y, a)\ny = NOT(x)\n"
            )
        assert "E008" in codes_of(e)
        assert "combinational cycle" in str(e.value)

    def test_no_observable_points(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("INPUT(a)\nx = NOT(a)\n")
        assert "E008" in codes_of(e)
        assert "observable" in str(e.value)

    def test_empty_file(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("")
        assert codes_of(e) == ["E009"]

    def test_comment_only_file(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("# just a comment\n\n   \n")
        assert codes_of(e) == ["E009"]

    def test_bad_net_name(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("INPUT(a)\nOUTPUT(x)\nx = AND(a, b(c)\n")
        assert "E010" in codes_of(e)

    def test_empty_argument(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("INPUT(a)\nOUTPUT(x)\nx = AND(a,, a)\n")
        assert "E001" in codes_of(e)

    def test_empty_declaration(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("INPUT()\nOUTPUT(x)\nINPUT(a)\nx = NOT(a)\n")
        assert "E001" in codes_of(e)


class TestMultiError:
    def test_collects_all_issues(self):
        text = (
            "INPUT(a)\n"
            "INPUT(a)\n"          # E004
            "OUTPUT(x)\n"
            "x = FROB(ghost)\n"   # E002 (FROB never registers, so x stays
            "x = NOT(a)\n"        # drivable here without E006)
        )
        with pytest.raises(BenchParseError) as e:
            parse_bench(text)
        assert set(codes_of(e)) == {"E002", "E004"}
        assert len(e.value.issues) == 2

    def test_issues_sorted_by_location(self):
        text = "INPUT(a)\nOUTPUT(x)\nx = AND(a, g1)\ny = OR(a, g2)\n"
        with pytest.raises(BenchParseError) as e:
            parse_bench(text)
        linenos = [i.lineno for i in e.value.issues]
        assert linenos == sorted(linenos)

    def test_lineno_points_at_first_issue(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("INPUT(a)\njunk\nOUTPUT(x)\nx = FROB(a)\n")
        assert e.value.lineno == 2

    def test_legacy_constructor(self):
        err = BenchParseError(3, "something broke")
        assert err.lineno == 3
        assert err.codes == ["E000"]
        assert "line 3" in str(err)
        assert "something broke" in str(err)

    def test_column_context(self):
        with pytest.raises(BenchParseError) as e:
            parse_bench("INPUT(a)\nOUTPUT(x)\nx = AND(a, ghost)\n")
        issue = next(i for i in e.value.issues if i.code == "E007")
        assert issue.column == "x = AND(a, ghost)".find("ghost") + 1
        assert "col" in issue.render()


class TestEdgeCases:
    GOOD = "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nx = AND(a, b)\n"

    def test_bom_tolerated(self):
        c = parse_bench("\ufeff" + self.GOOD)
        assert c.num_inputs == 2

    def test_crlf_tolerated(self):
        c = parse_bench(self.GOOD.replace("\n", "\r\n"))
        assert c.num_inputs == 2

    def test_trailing_whitespace_and_blank_lines(self):
        text = "INPUT(a)   \n\n  OUTPUT(x)\t\nx = NOT(a)  \n\n"
        c = parse_bench(text)
        assert c.num_inputs == 1

    def test_missing_final_newline(self):
        c = parse_bench(self.GOOD.rstrip("\n"))
        assert c.num_inputs == 2

    def test_mid_line_comments(self):
        text = (
            "INPUT(a) # the input\n"
            "OUTPUT(x) # the output\n"
            "x = NOT(a) # invert # twice\n"
        )
        c = parse_bench(text)
        assert c.num_gates == 1

    def test_forward_references(self):
        c = parse_bench("INPUT(a)\nOUTPUT(x)\nx = NOT(y)\ny = BUFF(a)\n")
        assert c.num_gates == 2

    def test_long_net_names(self):
        name = "n" * 5000
        c = parse_bench(f"INPUT({name})\nOUTPUT(x)\nx = NOT({name})\n")
        assert name in c.inputs

    def test_wide_fanin_within_cap(self):
        args = ", ".join(f"i{k}" for k in range(64))
        decls = "\n".join(f"INPUT(i{k})" for k in range(64))
        c = parse_bench(f"{decls}\nOUTPUT(x)\nx = AND({args})\n")
        assert len(c.gate_for("x").inputs) == 64

    def test_fanin_above_cap_rejected(self):
        args = ", ".join(f"i{k}" for k in range(65))
        decls = "\n".join(f"INPUT(i{k})" for k in range(65))
        with pytest.raises(BenchParseError) as e:
            parse_bench(f"{decls}\nOUTPUT(x)\nx = AND({args})\n")
        assert "E003" in codes_of(e)

    def test_bom_equivalent_parse(self):
        plain = parse_bench(self.GOOD)
        bom = parse_bench("\ufeff" + self.GOOD)
        assert plain.structurally_equal(bom)
        assert write_bench(plain) == write_bench(bom)

    def test_issue_render_file_level(self):
        issue = BenchParseIssue(code="E009", lineno=0, message="empty")
        assert issue.render() == "file: [E009] empty"
