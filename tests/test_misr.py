"""Tests for MISR signature compaction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rpg.misr import (
    Misr,
    SignatureCollector,
    aliasing_probability,
    fold_bits,
    signature_of_trace,
)


class TestMisr:
    def test_deterministic(self):
        a = Misr(16, seed=3)
        b = Misr(16, seed=3)
        stream = [5, 9, 0, 0xFFFF, 123]
        assert a.compact(stream) == b.compact(stream)

    def test_zero_inputs_still_cycle(self):
        m = Misr(16, seed=1)
        sigs = set()
        for _ in range(10):
            m.clock(0)
            sigs.add(m.signature)
        assert len(sigs) > 5  # the LFSR churns even with zero input

    def test_all_zero_state_and_input_stays_zero(self):
        m = Misr(16, seed=0)
        m.clock(0)
        assert m.signature == 0
        m.clock(1)  # input breaks the lockup
        assert m.signature != 0

    def test_single_bit_difference_changes_signature(self):
        a = Misr(32)
        b = Misr(32)
        a.compact([1, 2, 3, 4])
        b.compact([1, 2, 3, 5])  # one bit differs
        assert a.signature != b.signature

    def test_input_width_checked(self):
        m = Misr(8)
        with pytest.raises(ValueError):
            m.clock(0x100)
        with pytest.raises(ValueError):
            m.clock(-1)

    def test_unknown_width(self):
        with pytest.raises(ValueError):
            Misr(65)

    @given(
        stream=st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=50),
        flip=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_error_streams_rarely_alias(self, stream, flip):
        """Flipping one input bit must change a 16-bit signature in (at
        least) these randomly drawn cases (aliasing is ~2^-16)."""
        pos = flip.draw(st.integers(0, len(stream) - 1))
        bit = flip.draw(st.integers(0, 15))
        mutated = list(stream)
        mutated[pos] ^= 1 << bit
        assert Misr(16).compact(stream) != Misr(16).compact(mutated)


class TestHelpers:
    def test_fold_bits(self):
        assert fold_bits([1, 0, 1], 8) == 0b101
        assert fold_bits([1, 1], 1) == 0  # overlay XOR cancels
        assert fold_bits([], 8) == 0

    def test_aliasing_probability(self):
        assert aliasing_probability(16) == 2.0**-16


class TestSignatureCollector:
    def test_good_and_faulty_traces_differ(self, s27):
        from repro.faults.collapse import collapse_faults
        from repro.faults.model import FaultGraph
        from repro.simulation.compiled import Injections
        from repro.simulation.sequential import simulate_test

        graph = FaultGraph(s27)
        si = [0, 0, 1]
        vectors = [[0, 1, 1, 1], [1, 0, 0, 1], [0, 1, 1, 1]]
        good = simulate_test(graph.model, si, vectors)
        good_sig = signature_of_trace(good)

        diverged = 0
        for fault in collapse_faults(s27):
            inj = Injections.build_whole_word(
                [(graph.signal_of(fault), 0, fault.value)],
                graph.model.level_of_signal,
            )
            bad = simulate_test(graph.model, si, vectors, injections=inj)
            if (
                bad.outputs != good.outputs
                or bad.states[-1] != good.states[-1]
            ):
                # Observable difference => signature must differ.
                assert signature_of_trace(bad) != good_sig
                diverged += 1
            else:
                assert signature_of_trace(bad) == good_sig
        assert diverged > 0

    def test_collector_order_sensitivity(self):
        a = SignatureCollector(16)
        a.outputs([1, 0])
        a.outputs([0, 1])
        b = SignatureCollector(16)
        b.outputs([0, 1])
        b.outputs([1, 0])
        assert a.signature != b.signature

    def test_scan_bits_serial(self):
        a = SignatureCollector(16)
        a.scan_bits([1, 0, 1])
        b = SignatureCollector(16)
        b.scan_bits([1, 0, 0])
        assert a.signature != b.signature
