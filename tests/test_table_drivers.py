"""Fast (s27-scale) tests of the remaining table drivers."""

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import table6, table7, table8


class TestTable7Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return table7.run(circuits=("s27",), max_combos=4)

    def test_runs_for_each_circuit(self, result):
        assert set(result.runs) == {"s27"}
        assert set(result.table6_runs) == {"s27"}

    def test_uses_table6_combo(self, result):
        t6 = result.table6_runs["s27"]
        t7 = result.runs["s27"]
        assert (t7.config.la, t7.config.lb, t7.config.n) == (
            t6.config.la,
            t6.config.lb,
            t6.config.n,
        )

    def test_d1_order_decreasing(self, result):
        assert result.runs["s27"].config.d1_values == tuple(range(10, 0, -1))

    def test_render(self, result):
        text = result.render()
        assert "D1 = 10,9,...,1" in text
        assert "s27" in text


class TestTable8Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return table8.run(circuits=("s27",), combos_per_circuit=3, stride=2)

    def test_first_entry_complete(self, result):
        entries = result.runs["s27"]
        assert entries
        assert entries[0][1].complete

    def test_entries_bounded(self, result):
        assert len(result.runs["s27"]) <= 3

    def test_app_counts_accessor(self, result):
        apps = result.app_counts("s27")
        assert len(apps) == len(result.runs["s27"])
        assert result.app_counts("missing") == []

    def test_render(self, result):
        assert "Table 8" in result.render()


class TestTable6Renderflags:
    def test_incomplete_marked(self):
        """An impossible-target run renders 'NO' rather than raising."""
        from repro.core.parameter_selection import ParameterCombo
        from repro.core.procedure2 import Procedure2Result
        from repro.core.config import BistConfig
        from repro.core.session import CircuitReport

        result = Procedure2Result(
            circuit_name="x",
            config=BistConfig(),
            n_sv=4,
            num_targets=10,
            ts0_detected=5,
        )
        report = CircuitReport(
            circuit_name="x",
            combo=ParameterCombo(la=8, lb=16, n=64, ncyc0=100),
            result=result,
        )
        t6 = table6.Table6Result(reports={"x": report})
        assert "NO" in t6.render()
        assert not t6.all_complete()
