"""Tests for the combinational PPSFP simulator."""

import numpy as np
import pytest

from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator, ScanTest
from repro.faults.model import FaultGraph
from repro.faults.ppsfp import CombinationalFaultSimulator, pack_patterns


class TestPackPatterns:
    def test_layout(self):
        patterns = np.array([[1, 0], [0, 1], [1, 1]], dtype=np.uint8)
        words = pack_patterns(patterns)
        assert words.shape == (2, 1)
        assert int(words[0, 0]) == 0b101  # input 0 is 1 in patterns 0, 2
        assert int(words[1, 0]) == 0b110

    def test_multiple_words(self):
        patterns = np.ones((65, 1), dtype=np.uint8)
        words = pack_patterns(patterns)
        assert words.shape == (1, 2)
        assert int(words[0, 0]) == 2**64 - 1
        assert int(words[0, 1]) == 1

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pack_patterns(np.zeros(4, dtype=np.uint8))


class TestPpsfpAgainstSequential:
    def test_matches_single_vector_fault_sim(self, s27):
        """PPSFP over (PI, SI) patterns == sequential sim of L=1 tests."""
        graph = FaultGraph(s27)
        faults = collapse_faults(s27)
        rng = np.random.Generator(np.random.PCG64(42))
        n_patterns = 100
        patterns = rng.integers(0, 2, size=(n_patterns, 7), dtype=np.uint8)

        comb = CombinationalFaultSimulator(graph)
        words = pack_patterns(patterns)
        valid = np.full(words.shape[1], np.uint64(2**64 - 1))
        tail = n_patterns % 64
        if tail:
            valid[-1] = np.uint64((1 << tail) - 1)
        ppsfp_hits = set(comb.detected(words, faults, valid_mask=valid))

        seq = FaultSimulator(graph)
        tests = [
            ScanTest(si=row[4:].tolist(), vectors=[row[:4].tolist()])
            for row in patterns
        ]
        seq_hits = set(seq.simulate(tests, faults))
        assert ppsfp_hits == seq_hits

    def test_valid_mask_limits_patterns(self, s27):
        graph = FaultGraph(s27)
        faults = collapse_faults(s27)
        comb = CombinationalFaultSimulator(graph)
        patterns = np.ones((64, 7), dtype=np.uint8)
        words = pack_patterns(patterns)
        none_valid = np.array([0], dtype=np.uint64)
        assert comb.detected(words, faults, valid_mask=none_valid) == []

    def test_input_row_check(self, s27_graph):
        comb = CombinationalFaultSimulator(s27_graph)
        with pytest.raises(ValueError):
            comb.detected(np.zeros((3, 1), dtype=np.uint64), [])

    def test_detection_counts(self, s27_graph):
        comb = CombinationalFaultSimulator(s27_graph)
        faults = collapse_faults(s27_graph.circuit)
        rng = np.random.Generator(np.random.PCG64(7))
        patterns = rng.integers(0, 2, size=(64, 7), dtype=np.uint8)
        words = pack_patterns(patterns)
        counts = comb.detection_counts(words, faults)
        detected = set(comb.detected(words, faults))
        for fault, count in counts.items():
            assert 0 <= count <= 64
            assert (count > 0) == (fault in detected)
