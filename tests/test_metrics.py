"""Tests for reporting metrics and the paper's number formatting."""

import pytest

from repro.core.metrics import (
    coverage_percent,
    format_optional,
    human_cycles,
    ls_to_run_length,
)


class TestHumanCycles:
    @pytest.mark.parametrize(
        "value,expected",
        [
            # Samples straight from the paper's Table 6.
            (2568, "2.6K"),
            (3300, "3.3K"),
            (25_400, "25.4K"),
            (13_000, "13.0K"),
            (316_000, "316K"),
            (870_000, "870K"),
            (1_200_000, "1.2M"),
            (2_400_000, "2.4M"),
            (10_200_000, "10.2M"),
            (224_000, "224K"),
        ],
    )
    def test_paper_style(self, value, expected):
        assert human_cycles(value) == expected

    def test_small_numbers_exact(self):
        assert human_cycles(999) == "999"
        assert human_cycles(0) == "0"

    def test_none_is_empty(self):
        assert human_cycles(None) == ""


class TestCoverage:
    def test_percent(self):
        assert coverage_percent(99, 100) == 99.0
        assert coverage_percent(0, 0) == 100.0

    def test_ls_to_run_length(self):
        # The paper: ls = 0.50 -> a limited scan every 2 time units.
        assert ls_to_run_length(0.5) == 2.0
        assert ls_to_run_length(0.1) == pytest.approx(10.0)
        assert ls_to_run_length(None) is None
        assert ls_to_run_length(0.0) is None

    def test_format_optional(self):
        assert format_optional(None) == ""
        assert format_optional(0.55) == "0.55"
        assert format_optional(1, fmt="{}") == "1"
