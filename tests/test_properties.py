"""Cross-cutting property-based tests (hypothesis).

Invariants spanning several modules: format round-trips, cost-model
identities, schedule statistics, and simulator consistency under
transformations.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.circuit.bench_parser import parse_bench, write_bench
from repro.circuit.verilog import parse_verilog, write_verilog
from repro.core.config import BistConfig
from repro.core.cost import ncyc0, total_cycles
from repro.core.limited_scan import schedule_for_test
from repro.core.test_set import generate_ts0
from repro.rpg.prng import make_source

small_circuits = st.builds(
    lambda seed, n_pi, n_ff, n_gates: synthesize(
        SyntheticSpec(
            name="p",
            n_pi=n_pi,
            n_po=2,
            n_ff=n_ff,
            n_gates=n_gates,
            seed=seed,
        )
    ),
    seed=st.integers(0, 99_999),
    n_pi=st.integers(2, 8),
    n_ff=st.integers(1, 6),
    n_gates=st.integers(15, 60),
)


class TestFormatRoundTrips:
    @settings(max_examples=20, deadline=None)
    @given(circuit=small_circuits)
    def test_bench_round_trip_structural(self, circuit):
        back = parse_bench(write_bench(circuit))
        assert back.inputs == circuit.inputs
        assert back.outputs == circuit.outputs
        assert back.state_vars == circuit.state_vars
        assert {g.output for g in back.iter_gates()} == {
            g.output for g in circuit.iter_gates()
        }

    @settings(max_examples=20, deadline=None)
    @given(circuit=small_circuits)
    def test_verilog_round_trip_structural(self, circuit):
        back = parse_verilog(write_verilog(circuit))
        assert back.inputs == circuit.inputs
        assert back.state_vars == circuit.state_vars

    @settings(max_examples=10, deadline=None)
    @given(circuit=small_circuits, stim=st.integers(0, 2**40))
    def test_bench_round_trip_behavioural(self, circuit, stim):
        from repro.simulation.compiled import CompiledModel
        from repro.simulation.sequential import simulate_test

        back = parse_bench(write_bench(circuit))
        n_pi, n_ff = circuit.num_inputs, circuit.num_state_vars
        si = [(stim >> i) & 1 for i in range(n_ff)]
        vecs = [
            [(stim >> (n_ff + u * n_pi + i)) & 1 for i in range(n_pi)]
            for u in range(3)
        ]
        t1 = simulate_test(CompiledModel(circuit), si, vecs)
        t2 = simulate_test(CompiledModel(back), si, vecs)
        assert t1.outputs == t2.outputs
        assert t1.states == t2.states


class TestCostIdentities:
    @given(
        n_sv=st.integers(0, 500),
        la=st.integers(1, 256),
        lb=st.integers(1, 512),
        n=st.integers(1, 512),
    )
    def test_ncyc0_formula(self, n_sv, la, lb, n):
        assert ncyc0(n_sv, la, lb, n) == (2 * n + 1) * n_sv + n * (la + lb)

    @given(
        base=st.integers(0, 10**6),
        nshs=st.lists(st.integers(0, 10**5), max_size=20),
    )
    def test_total_cycles_identity(self, base, nshs):
        assert total_cycles(base, nshs) == base * (1 + len(nshs)) + sum(nshs)

    @given(
        n_sv=st.integers(1, 100),
        la=st.integers(1, 100),
        lb=st.integers(1, 100),
        n=st.integers(1, 100),
    )
    def test_ncyc0_monotone(self, n_sv, la, lb, n):
        assert ncyc0(n_sv, la, lb, n) < ncyc0(n_sv, la + 1, lb, n)
        assert ncyc0(n_sv, la, lb, n) < ncyc0(n_sv, la, lb + 1, n)
        assert ncyc0(n_sv, la, lb, n) < ncyc0(n_sv, la, lb, n + 1)
        assert ncyc0(n_sv, la, lb, n) < ncyc0(n_sv + 1, la, lb, n)


class TestScheduleProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        length=st.integers(1, 64),
        d1=st.integers(1, 10),
        d2=st.integers(1, 40),
    )
    def test_schedule_invariants(self, seed, length, d1, d2):
        steps = schedule_for_test(make_source(seed), length, d1, d2)
        assert len(steps) == length
        assert steps[0] == (0, ())
        for k, fill in steps:
            assert 0 <= k < d2
            assert len(fill) == k
            assert set(fill) <= {0, 1}

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_d1_one_always_draws_shift(self, seed):
        """r1 mod 1 == 0 always: every interior unit draws a shift."""
        src_a = make_source(seed)
        steps = schedule_for_test(src_a, 32, d1=1, d2=2)
        # With d2 = 2, shift is 0 or 1, each drawn; statistically some 1s.
        assert any(k == 1 for k, _ in steps[1:])


class TestTs0Properties:
    @settings(max_examples=15, deadline=None)
    @given(
        circuit=small_circuits,
        la=st.integers(1, 8),
        extra=st.integers(1, 8),
        n=st.integers(1, 8),
    )
    def test_ts0_shape_invariants(self, circuit, la, extra, n):
        cfg = BistConfig(la=la, lb=la + extra, n=n)
        ts0 = generate_ts0(circuit, cfg)
        assert len(ts0) == 2 * n
        assert all(t.length == la for t in ts0[:n])
        assert all(t.length == la + extra for t in ts0[n:])
        assert all(len(t.si) == circuit.num_state_vars for t in ts0)
        flat = [b for t in ts0 for v in t.vectors for b in v]
        assert set(flat) <= {0, 1}
