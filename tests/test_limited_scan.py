"""Tests for Procedure 1 (random limited-scan insertion)."""

import pytest

from repro.core.config import BistConfig
from repro.core.limited_scan import (
    build_limited_scan_test_set,
    limited_scan_time_units,
    schedule_for_test,
    shift_cycles,
)
from repro.core.test_set import generate_ts0
from repro.rpg.prng import make_source


class TestScheduleForTest:
    def test_time_unit_zero_never_scans(self):
        src = make_source(1)
        for _ in range(20):
            steps = schedule_for_test(src, length=6, d1=1, d2=4)
            assert steps[0] == (0, ())

    def test_length_matches(self):
        src = make_source(2)
        assert len(schedule_for_test(src, 9, d1=2, d2=4)) == 9

    def test_shift_bounds_and_fill_sizes(self):
        src = make_source(3)
        for _ in range(10):
            for k, fill in schedule_for_test(src, 20, d1=1, d2=5):
                assert 0 <= k <= 4
                assert len(fill) == k

    def test_d1_one_inserts_everywhere(self):
        """With D1 = 1, r1 mod 1 == 0 always: every interior time unit
        draws a shift amount."""
        src = make_source(4)
        steps = schedule_for_test(src, 30, d1=1, d2=8)
        # Shift amounts are r2 mod 8; statistically most are nonzero.
        nonzero = sum(1 for k, _ in steps[1:] if k > 0)
        assert nonzero >= 20

    def test_insertion_probability_scales_with_d1(self):
        """Larger D1 -> fewer insertions (the paper's control knob)."""

        def count(d1):
            src = make_source(5)
            hits = 0
            for _ in range(50):
                steps = schedule_for_test(src, 40, d1=d1, d2=10)
                hits += sum(1 for k, _ in steps[1:] if k > 0)
            return hits

        assert count(1) > count(3) > count(10)

    def test_validation(self):
        src = make_source(1)
        with pytest.raises(ValueError):
            schedule_for_test(src, 5, d1=0, d2=4)
        with pytest.raises(ValueError):
            schedule_for_test(src, 5, d1=1, d2=0)


class TestBuildTestSet:
    def _ts0(self, circuit, cfg):
        return generate_ts0(circuit, cfg)

    def test_preserves_si_and_vectors(self, s27):
        cfg = BistConfig(la=4, lb=8, n=3)
        ts0 = self._ts0(s27, cfg)
        ts = build_limited_scan_test_set(ts0, 1, 2, cfg, s27.num_state_vars)
        assert len(ts) == len(ts0)
        for a, b in zip(ts0, ts):
            assert a.si == b.si
            assert a.vectors == b.vectors
            assert b.schedule is not None

    def test_reseed_per_test_gives_identical_schedules(self, s27):
        cfg = BistConfig(la=4, lb=8, n=4, reseed_per_test=True)
        ts = build_limited_scan_test_set(
            self._ts0(s27, cfg), 1, 1, cfg, s27.num_state_vars
        )
        la_schedules = {tuple(map(tuple, t.schedule)) for t in ts[:4]}
        assert len(la_schedules) == 1  # all L_A tests share one schedule

    def test_one_stream_gives_differing_schedules(self, s27):
        cfg = BistConfig(la=6, lb=12, n=4, reseed_per_test=False)
        ts = build_limited_scan_test_set(
            self._ts0(s27, cfg), 1, 1, cfg, s27.num_state_vars
        )
        la_schedules = {tuple(map(tuple, t.schedule)) for t in ts[:4]}
        assert len(la_schedules) > 1

    def test_different_iterations_differ(self, s27):
        cfg = BistConfig(la=4, lb=8, n=2)
        ts0 = self._ts0(s27, cfg)
        t1 = build_limited_scan_test_set(ts0, 1, 1, cfg, 3)
        t2 = build_limited_scan_test_set(ts0, 2, 1, cfg, 3)
        assert [t.schedule for t in t1] != [t.schedule for t in t2]

    def test_different_d1_share_draws(self, s27):
        """The same seed(I) stream thresholded by different D1: a time
        unit inserted under D1=2 must also be inserted under D1=1."""
        cfg = BistConfig(la=4, lb=8, n=1)
        ts0 = self._ts0(s27, cfg)
        d1_1 = build_limited_scan_test_set(ts0, 1, 1, cfg, 3)
        d1_2 = build_limited_scan_test_set(ts0, 1, 2, cfg, 3)
        for ta, tb in zip(d1_1, d1_2):
            for (ka, _), (kb, _) in zip(ta.schedule, tb.schedule):
                if kb > 0:
                    # Same draw position is also zero mod 1.
                    assert ka >= 0  # structural (can't compare k values
                    # directly: the r2/fill draws shift positions)

    def test_d2_default_allows_complete_scan(self, s27):
        cfg = BistConfig(la=4, lb=8, n=8)
        ts = build_limited_scan_test_set(
            self._ts0(s27, cfg), 3, 1, cfg, s27.num_state_vars
        )
        max_shift = max(k for t in ts for k, _ in t.schedule)
        assert max_shift <= s27.num_state_vars

    def test_metrics_helpers(self, s27):
        cfg = BistConfig(la=4, lb=8, n=2)
        ts = build_limited_scan_test_set(
            self._ts0(s27, cfg), 1, 1, cfg, s27.num_state_vars
        )
        n_ls = limited_scan_time_units(ts)
        n_sh = shift_cycles(ts)
        assert n_ls == sum(t.num_limited_scans for t in ts)
        assert n_sh == sum(t.total_shift_cycles for t in ts)
        assert n_sh >= n_ls  # every counted unit shifts at least 1

    def test_determinism(self, s27):
        cfg = BistConfig(la=4, lb=8, n=2)
        ts0 = self._ts0(s27, cfg)
        a = build_limited_scan_test_set(ts0, 5, 3, cfg, 3)
        b = build_limited_scan_test_set(ts0, 5, 3, cfg, 3)
        assert [t.schedule for t in a] == [t.schedule for t in b]
