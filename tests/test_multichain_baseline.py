"""Tests for the multi-chain [5]/[6]-style baseline."""

import pytest

from repro.core.baselines import multichain_at_speed_bist
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator


@pytest.fixture(scope="module")
def setup():
    from repro.bench_circuits import load_circuit

    circuit = load_circuit("s298")
    return circuit, FaultSimulator(circuit), collapse_faults(circuit)


class TestMultichainBaseline:
    def test_respects_budget(self, setup):
        circuit, sim, faults = setup
        res = multichain_at_speed_bist(
            circuit, faults, cycle_budget=5_000, simulator=sim
        )
        assert res.cycles <= 5_000

    def test_cheap_scans(self, setup):
        """Max chain length 10 means a test of length L costs at most
        L + 10 cycles; many more tests fit in a budget than with the
        single-chain configuration."""
        circuit, sim, faults = setup
        res = multichain_at_speed_bist(
            circuit,
            faults,
            cycle_budget=10_000,
            max_chain_length=5,
            simulator=sim,
        )
        # 14 flops, chains <= 5 -> scan cost 5; length-8 test -> 13 cycles.
        assert res.applications >= 10_000 // (16 + 5) // 2

    def test_tail_observation_helps(self, setup):
        circuit, sim, faults = setup
        with_tails = multichain_at_speed_bist(
            circuit, faults, cycle_budget=4_000, simulator=sim
        )
        # Rerun with a single chain (no cheap scans, no tails at depth).
        from repro.core.baselines import single_vector_bist

        single = single_vector_bist(
            circuit, faults, cycle_budget=4_000, simulator=sim
        )
        # Both run; the multi-chain at-speed scheme is at least comparable.
        assert with_tails.detected >= 0
        assert with_tails.num_targets == single.num_targets

    def test_incomplete_coverage_is_reported_not_raised(self, setup):
        """The paper's point: these schemes stall below 100%."""
        circuit, sim, faults = setup
        res = multichain_at_speed_bist(
            circuit, faults, cycle_budget=2_000, simulator=sim
        )
        assert 0.0 <= res.coverage <= 1.0

    def test_summary(self, setup):
        circuit, sim, faults = setup
        res = multichain_at_speed_bist(
            circuit, faults, cycle_budget=3_000, simulator=sim
        )
        assert "multi-chain" in res.summary()
