"""Tests for the [7]-[11]-style scan-overlap TAT reduction."""

import pytest

from repro.core.scan_overlap import (
    OverlapPlan,
    build_session,
    fill_bits_for,
    minimal_shift,
    overlap_experiment,
    plan_overlap,
)
from repro.faults.fault_sim import FaultSimulator, ScanTest
from repro.simulation.scan import full_scan_state, limited_shift, state_to_bits


class TestMinimalShift:
    def test_identity(self):
        assert minimal_shift([1, 0, 1], [1, 0, 1]) == 0

    def test_one_shift(self):
        # target[1:] == response[:2]
        assert minimal_shift([1, 0, 1], [0, 1, 0]) == 1

    def test_full_scan_worst_case(self):
        assert minimal_shift([1, 1, 1], [0, 0, 0]) == 3

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            minimal_shift([1, 0], [1, 0, 1])

    def test_shift_actually_reaches_target(self):
        """Property-style check: shifting the response by the computed k
        with the computed fill bits must produce exactly the target."""
        import itertools

        for response in itertools.product([0, 1], repeat=4):
            for target in itertools.product([0, 1], repeat=4):
                k = minimal_shift(response, target)
                state = full_scan_state(4, list(response), 1)
                new, _ = limited_shift(state, k, list(fill_bits_for(target, k)))
                assert state_to_bits(new) == list(target), (response, target, k)


class TestPlanning:
    def _tests(self, sis):
        return [ScanTest(si=list(si), vectors=[[0]]) for si in sis]

    def test_greedy_chains_perfect_overlaps(self):
        # responses equal the next test's SI: zero-shift chain.
        tests = self._tests([[0, 0], [1, 1], [0, 1]])
        responses = [[1, 1], [0, 1], [0, 0]]
        plan = plan_overlap(tests, responses)
        assert plan.order == [0, 1, 2]
        assert plan.shifts == [2, 0, 0]
        assert plan.optimized_cycles() < plan.full_scan_cycles()

    def test_original_order_mode(self):
        tests = self._tests([[0, 0], [1, 1]])
        responses = [[0, 0], [1, 1]]
        plan = plan_overlap(tests, responses, greedy_order=False)
        assert plan.order == [0, 1]

    def test_empty(self):
        plan = plan_overlap([], [])
        assert plan.num_tests == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_overlap(self._tests([[0]]), [])

    def test_cost_model(self):
        plan = OverlapPlan(order=[0, 1], shifts=[3, 1], n_sv=3)
        # shifts (3+1) + 2 functional + final scan-out 3.
        assert plan.optimized_cycles() == 4 + 2 + 3
        assert plan.full_scan_cycles() == 3 * 3 + 2
        assert 0 < plan.saving() < 1


class TestSession:
    def test_session_structure(self):
        tests = [
            ScanTest(si=[0, 0], vectors=[[1]]),
            ScanTest(si=[1, 0], vectors=[[0]]),
        ]
        plan = OverlapPlan(order=[0, 1], shifts=[2, 1], n_sv=2)
        session = build_session(tests, plan)
        assert session.si == [0, 0]
        assert session.vectors == [[1], [0]]
        assert session.schedule[0] == (0, ())
        assert session.schedule[1][0] == 1

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError):
            build_session([], OverlapPlan(order=[], shifts=[], n_sv=0))


class TestExperiment:
    def test_s27_full_coverage_preserved(self, s27):
        out = overlap_experiment(s27)
        assert out.optimized_detected == out.baseline_detected
        assert out.plan.optimized_cycles() <= out.plan.full_scan_cycles()

    @pytest.mark.slow
    def test_repair_restores_coverage(self, medium_synth):
        out = overlap_experiment(medium_synth, repair=True)
        assert out.optimized_detected == out.baseline_detected
        # Repair must still leave a valid session (coverage re-verified).
        sim = FaultSimulator(medium_synth)
        # sanity: summary renders
        assert "TAT" in out.summary()

    def test_greedy_beats_original_order(self, s27):
        greedy = overlap_experiment(s27, greedy_order=True)
        plain = overlap_experiment(s27, greedy_order=False)
        assert (
            greedy.plan.optimized_cycles() <= plain.plan.optimized_cycles()
        )
