"""Tests for the experiment drivers (quick-scale)."""

import pytest

from repro.experiments import bist_for, clear_cache
from repro.experiments import table1, table5, table6
from repro.experiments.grid import run_grid
from repro.experiments.report import format_grid, format_table


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run()

    def test_fault_found_with_paper_behaviour(self, result):
        """A fault missed by the plain test but caught with the shift."""
        assert result.fault is not None
        good = result.plain_trace
        bad = result.plain_trace_faulty
        # Undetected without limited scan: identical outputs and final state.
        assert good.outputs == bad.outputs
        assert good.states[good.length] == bad.states[bad.length]
        # Detected with it.
        g2, b2 = result.ls_trace, result.ls_trace_faulty
        detected = (
            g2.outputs != b2.outputs
            or g2.states[g2.length] != b2.states[b2.length]
            or g2.scanout != b2.scanout
        )
        assert detected

    def test_shift_at_time_unit_three(self, result):
        assert result.ls_trace.shifts[3] == 1
        assert result.ls_trace.shifts[:3] == [0, 0, 0]

    def test_timing_rows_include_shift_cycle(self, result):
        rows = result.ls_trace.timing_rows()
        # 5 vectors + 1 shift + final = 7 rows (paper's Table 2 shape).
        assert len(rows) == 7
        assert sum(1 for r in rows if r.kind == "shift") == 1

    def test_render(self, result):
        text = result.render()
        assert "Table 1" in text
        assert "Table 2" in text


class TestTable5:
    def test_exact_reproduction(self):
        assert table5.run().matches_paper()

    def test_render_marks_matches(self):
        assert "no (paper" not in table5.run().render()


class TestGridDriver:
    def test_small_grid_on_s27(self):
        bist = bist_for("s27")
        result = run_grid(bist, la_values=(2, 4), lb_values=(4, 8), n_values=(4,))
        # la<lb cells only: (2,4),(2,8),(4,8).
        assert set(result.ncyc0) == {(2, 4, 4), (2, 8, 4), (4, 8, 4)}
        assert all(v > 0 for v in result.ncyc0.values())
        text = result.render()
        assert "Ncyc0" in text

    def test_complete_cells_have_cycles(self):
        bist = bist_for("s27")
        result = run_grid(bist, la_values=(4,), lb_values=(8,), n_values=(8,))
        for key, cycles in result.complete_cells().items():
            assert cycles >= result.ncyc0[key]


class TestTable6Driver:
    def test_single_circuit(self):
        result = table6.run(circuits=("s27",), max_combos=4)
        rep = result.reports["s27"]
        assert rep.result.complete
        assert "s27" in result.render()
        assert result.all_complete()


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "long"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_grid_dash_and_empty(self):
        text = format_grid(
            "T",
            la_values=(8, 16),
            lb_values=(16, 32),
            n_values=(64,),
            cells={(8, 16, 64): None, (8, 32, 64): 123, (16, 32, 64): 7},
        )
        assert "-" in text
        assert "123" in text


class TestSessionCache:
    def test_cache_returns_same_object(self):
        a = bist_for("s27")
        b = bist_for("s27")
        assert a is b
        clear_cache()
        c = bist_for("s27")
        assert c is not a
