"""Crash-safety of the experiment runner: argparse, atomic writes,
structured failure reporting, and manifest-based resume."""

import json

import pytest

from repro.experiments import runner
from repro.robustness.atomic import atomic_write_json, atomic_write_text


@pytest.fixture
def fake_batch(monkeypatch):
    """Replace the expensive sections with counted stubs.

    Returns the per-section call-count dict; ``boom`` always raises.
    """
    calls = {"good": 0, "boom": 0, "tail": 0}

    def specs(full, out_dir):
        def run(name):
            calls[name] += 1
            if name == "boom":
                raise ValueError("section exploded")
            return f"{name} output"

        return [(name, lambda name=name: run(name)) for name in calls]

    monkeypatch.setattr(runner, "_section_specs", specs)
    monkeypatch.setattr(runner, "lint_preflight", lambda names: "stub ok")
    return calls


class TestArgparse:
    def test_bad_flags_exit_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            runner.main(["--out"])  # missing value
        assert exc.value.code == 2
        assert "usage:" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            runner.main(["--no-such-flag"])

    def test_help_mentions_resume(self, capsys):
        with pytest.raises(SystemExit) as exc:
            runner.main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "--resume" in out and "--jobs" in out


class TestFailureReporting:
    def test_failures_json_and_exit_code(self, fake_batch, tmp_path, capsys):
        rc = runner.main(["--out", str(tmp_path)])
        assert rc == 1
        assert "boom" in capsys.readouterr().err
        # The batch kept going past the failure.
        assert fake_batch == {"good": 1, "boom": 1, "tail": 1}
        failures = json.loads((tmp_path / "failures.json").read_text())
        assert len(failures) == 1
        entry = failures[0]
        assert entry["section"] == "boom"
        assert entry["exception_type"] == "ValueError"
        assert entry["message"] == "section exploded"
        assert "ValueError: section exploded" in entry["traceback"]
        assert entry["elapsed"] >= 0
        # The section file records the failure inline.
        assert "FAILED: ValueError" in (tmp_path / "boom.txt").read_text()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["sections"]["boom"]["status"] == "failed"
        assert manifest["sections"]["good"]["status"] == "ok"

    def test_clean_batch_exits_zero(self, fake_batch, monkeypatch, tmp_path):
        def specs(full, out_dir):
            return [("good", lambda: "fine"), ("tail", lambda: "fine")]

        monkeypatch.setattr(runner, "_section_specs", specs)
        rc = runner.main(["--out", str(tmp_path)])
        assert rc == 0
        assert json.loads((tmp_path / "failures.json").read_text()) == []
        assert (tmp_path / "all_experiments.txt").exists()


class TestResume:
    def test_resume_skips_ok_and_reruns_failed(self, fake_batch, tmp_path):
        assert runner.main(["--out", str(tmp_path)]) == 1
        assert fake_batch == {"good": 1, "boom": 1, "tail": 1}
        # Resume: ok sections are read back from disk, the failed one
        # is re-run (and fails again).
        assert runner.main(["--out", str(tmp_path), "--resume"]) == 1
        assert fake_batch == {"good": 1, "boom": 2, "tail": 1}
        combined = (tmp_path / "all_experiments.txt").read_text()
        assert "good output" in combined and "tail output" in combined

    def test_without_resume_everything_reruns(self, fake_batch, tmp_path):
        runner.main(["--out", str(tmp_path)])
        runner.main(["--out", str(tmp_path)])
        assert fake_batch == {"good": 2, "boom": 2, "tail": 2}

    def test_mismatched_manifest_is_ignored(self, fake_batch, tmp_path):
        runner.main(["--out", str(tmp_path)])
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["version"] = 999
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        runner.main(["--out", str(tmp_path), "--resume"])
        assert fake_batch["good"] == 2  # not resumed: version mismatch

    def test_full_flag_invalidates_manifest(self, fake_batch, tmp_path):
        runner.main(["--out", str(tmp_path)])
        # A --full batch must not trust a quick batch's manifest.
        runner.main(["--out", str(tmp_path), "--resume", "--full"])
        assert fake_batch["good"] == 2

    def test_corrupt_manifest_is_ignored(self, fake_batch, tmp_path):
        runner.main(["--out", str(tmp_path)])
        (tmp_path / "manifest.json").write_text("{torn")
        runner.main(["--out", str(tmp_path), "--resume"])
        assert fake_batch["good"] == 2

    def test_resume_requires_section_file(self, fake_batch, tmp_path):
        runner.main(["--out", str(tmp_path)])
        (tmp_path / "good.txt").unlink()  # manifest says ok, file gone
        runner.main(["--out", str(tmp_path), "--resume"])
        assert fake_batch["good"] == 2


class TestAtomicWrites:
    def test_overwrite_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"
        assert list(tmp_path.iterdir()) == [path]

    def test_json_helper_roundtrip(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"a": [1, 2]})
        assert json.loads(path.read_text()) == {"a": [1, 2]}
        assert path.read_text().endswith("\n")

    def test_failed_write_preserves_previous(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "stable")
        with pytest.raises((TypeError, AttributeError)):
            atomic_write_text(path, object())  # not a str: write fails
        assert path.read_text() == "stable"
        # The failed writer cleaned up its private temp file.
        assert list(tmp_path.iterdir()) == [path]
