"""Crash-safety of the experiment runner: argparse, atomic writes,
structured failure reporting, and manifest-based resume."""

import json

import pytest

from repro.experiments import runner
from repro.robustness.atomic import atomic_write_json, atomic_write_text


@pytest.fixture
def fake_batch(monkeypatch):
    """Replace the expensive sections with counted stubs.

    Returns the per-section call-count dict; ``boom`` always raises.
    """
    calls = {"good": 0, "boom": 0, "tail": 0}

    def specs(full, out_dir):
        def run(name):
            calls[name] += 1
            if name == "boom":
                raise ValueError("section exploded")
            return f"{name} output"

        return [(name, lambda name=name: run(name)) for name in calls]

    monkeypatch.setattr(runner, "_section_specs", specs)
    monkeypatch.setattr(runner, "lint_preflight", lambda names: "stub ok")
    return calls


class TestArgparse:
    def test_bad_flags_exit_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            runner.main(["--out"])  # missing value
        assert exc.value.code == 2
        assert "usage:" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            runner.main(["--no-such-flag"])

    def test_help_mentions_resume(self, capsys):
        with pytest.raises(SystemExit) as exc:
            runner.main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "--resume" in out and "--jobs" in out


class TestFailureReporting:
    def test_failures_json_and_exit_code(self, fake_batch, tmp_path, capsys):
        rc = runner.main(["--out", str(tmp_path)])
        assert rc == 1
        assert "boom" in capsys.readouterr().err
        # The batch kept going past the failure.
        assert fake_batch == {"good": 1, "boom": 1, "tail": 1}
        failures = json.loads((tmp_path / "failures.json").read_text())
        assert len(failures) == 1
        entry = failures[0]
        assert entry["section"] == "boom"
        assert entry["exception_type"] == "ValueError"
        assert entry["message"] == "section exploded"
        assert "ValueError: section exploded" in entry["traceback"]
        assert entry["elapsed"] >= 0
        # The section file records the failure inline.
        assert "FAILED: ValueError" in (tmp_path / "boom.txt").read_text()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["sections"]["boom"]["status"] == "failed"
        assert manifest["sections"]["good"]["status"] == "ok"

    def test_clean_batch_exits_zero(self, fake_batch, monkeypatch, tmp_path):
        def specs(full, out_dir):
            return [("good", lambda: "fine"), ("tail", lambda: "fine")]

        monkeypatch.setattr(runner, "_section_specs", specs)
        rc = runner.main(["--out", str(tmp_path)])
        assert rc == 0
        assert json.loads((tmp_path / "failures.json").read_text()) == []
        assert (tmp_path / "all_experiments.txt").exists()


class TestResume:
    def test_resume_skips_ok_and_reruns_failed(self, fake_batch, tmp_path):
        assert runner.main(["--out", str(tmp_path)]) == 1
        assert fake_batch == {"good": 1, "boom": 1, "tail": 1}
        # Resume: ok sections are read back from disk, the failed one
        # is re-run (and fails again).
        assert runner.main(["--out", str(tmp_path), "--resume"]) == 1
        assert fake_batch == {"good": 1, "boom": 2, "tail": 1}
        combined = (tmp_path / "all_experiments.txt").read_text()
        assert "good output" in combined and "tail output" in combined

    def test_without_resume_everything_reruns(self, fake_batch, tmp_path):
        runner.main(["--out", str(tmp_path)])
        runner.main(["--out", str(tmp_path)])
        assert fake_batch == {"good": 2, "boom": 2, "tail": 2}

    def test_mismatched_manifest_is_ignored(self, fake_batch, tmp_path):
        runner.main(["--out", str(tmp_path)])
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["version"] = 999
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        runner.main(["--out", str(tmp_path), "--resume"])
        assert fake_batch["good"] == 2  # not resumed: version mismatch

    def test_full_flag_invalidates_manifest(self, fake_batch, tmp_path):
        runner.main(["--out", str(tmp_path)])
        # A --full batch must not trust a quick batch's manifest.
        runner.main(["--out", str(tmp_path), "--resume", "--full"])
        assert fake_batch["good"] == 2

    def test_corrupt_manifest_is_ignored(self, fake_batch, tmp_path):
        runner.main(["--out", str(tmp_path)])
        (tmp_path / "manifest.json").write_text("{torn")
        runner.main(["--out", str(tmp_path), "--resume"])
        assert fake_batch["good"] == 2

    def test_resume_requires_section_file(self, fake_batch, tmp_path):
        runner.main(["--out", str(tmp_path)])
        (tmp_path / "good.txt").unlink()  # manifest says ok, file gone
        runner.main(["--out", str(tmp_path), "--resume"])
        assert fake_batch["good"] == 2


class TestAtomicWrites:
    def test_overwrite_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"
        assert list(tmp_path.iterdir()) == [path]

    def test_json_helper_roundtrip(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"a": [1, 2]})
        assert json.loads(path.read_text()) == {"a": [1, 2]}
        assert path.read_text().endswith("\n")

    def test_failed_write_preserves_previous(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "stable")
        with pytest.raises((TypeError, AttributeError)):
            atomic_write_text(path, object())  # not a str: write fails
        assert path.read_text() == "stable"
        # The failed writer cleaned up its private temp file.
        assert list(tmp_path.iterdir()) == [path]


class TestGracefulStop:
    """SIGTERM/SIGINT finish the in-flight section, then stop cleanly."""

    def _stub(self, monkeypatch, tmp_path, signum):
        import os
        import signal as _signal

        calls = {"first": 0, "second": 0}

        def specs(full, out_dir):
            def first():
                calls["first"] += 1
                # The signal lands *mid-section*: the runner must defer
                # it, let this section finish, and commit its output.
                os.kill(os.getpid(), signum)
                return "first output"

            return [
                ("first", first),
                ("second", lambda: calls.__setitem__(
                    "second", calls["second"] + 1) or "second output"),
            ]

        monkeypatch.setattr(runner, "_section_specs", specs)
        monkeypatch.setattr(runner, "lint_preflight", lambda names: "stub ok")
        return calls

    @pytest.mark.parametrize("signame", ["SIGTERM", "SIGINT"])
    def test_signal_defers_then_exits_75(
        self, monkeypatch, tmp_path, capsys, signame
    ):
        import signal as _signal

        signum = getattr(_signal, signame)
        calls = self._stub(monkeypatch, tmp_path, signum)
        rc = runner.main(["--out", str(tmp_path)])
        assert rc == runner.EXIT_INTERRUPTED == 75
        # The in-flight section completed; the next never started.
        assert calls == {"first": 1, "second": 0}
        assert "first output" in (tmp_path / "first.txt").read_text()
        assert not (tmp_path / "second.txt").exists()
        # The manifest is consistent and the combined output was written.
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["sections"]["first"]["status"] == "ok"
        assert "second" not in manifest["sections"]
        assert (tmp_path / "all_experiments.txt").exists()
        err = capsys.readouterr().err
        assert signame in err and "--resume" in err

    def test_resume_finishes_an_interrupted_batch(self, monkeypatch, tmp_path):
        import signal as _signal

        calls = self._stub(monkeypatch, tmp_path, _signal.SIGTERM)
        assert runner.main(["--out", str(tmp_path)]) == 75
        # Second run: no signal this time (the stub fires every run, so
        # swap in a quiet spec keeping the same section names).
        def quiet_specs(full, out_dir):
            return [
                ("first", lambda: calls.__setitem__(
                    "first", calls["first"] + 1) or "first output"),
                ("second", lambda: calls.__setitem__(
                    "second", calls["second"] + 1) or "second output"),
            ]

        monkeypatch.setattr(runner, "_section_specs", quiet_specs)
        assert runner.main(["--out", str(tmp_path), "--resume"]) == 0
        # "first" was resumed from disk, only "second" actually ran.
        assert calls == {"first": 1, "second": 1}

    def test_interrupt_wins_over_failure_exit(self, monkeypatch, tmp_path):
        import os
        import signal as _signal

        def specs(full, out_dir):
            def failing():
                os.kill(os.getpid(), _signal.SIGTERM)
                raise ValueError("boom")

            return [("bad", failing), ("tail", lambda: "tail output")]

        monkeypatch.setattr(runner, "_section_specs", specs)
        monkeypatch.setattr(runner, "lint_preflight", lambda names: "stub ok")
        # Both things happened -- a failure and an interrupt -- and the
        # interrupt's exit code wins (75, not 1): nothing is corrupt.
        assert runner.main(["--out", str(tmp_path)]) == 75
        failures = json.loads((tmp_path / "failures.json").read_text())
        assert [f["section"] for f in failures] == ["bad"]


class TestSections:
    def test_unknown_section_exits_2(self, fake_batch, tmp_path, capsys):
        rc = runner.main(
            ["--out", str(tmp_path), "--sections", "good,nope"]
        )
        assert rc == 2
        assert "nope" in capsys.readouterr().err
        assert fake_batch == {"good": 0, "boom": 0, "tail": 0}

    def test_section_filter_runs_only_named(self, fake_batch, tmp_path):
        assert runner.main(
            ["--out", str(tmp_path), "--sections", "good"]
        ) == 0
        assert fake_batch == {"good": 1, "boom": 0, "tail": 0}


@pytest.mark.chaos
class TestChildProcessKill:
    """The real thing: SIGTERM a runner *process* mid-section."""

    def test_sigterm_child_mid_section(self, tmp_path):
        import os
        import signal as _signal
        import subprocess
        import sys
        import time
        from pathlib import Path

        marker = tmp_path / "section-started"
        out_dir = tmp_path / "results"
        driver = tmp_path / "driver.py"
        driver.write_text(
            "import sys, time\n"
            "from pathlib import Path\n"
            "from repro.experiments import runner\n"
            "marker = Path(sys.argv[1])\n"
            "def specs(full, out_dir):\n"
            "    def slow():\n"
            "        marker.touch()\n"
            "        for _ in range(20):\n"
            "            time.sleep(0.1)\n"
            "        return 'slow output'\n"
            "    return [('slow', slow), ('tail', lambda: 'tail output')]\n"
            "runner._section_specs = specs\n"
            "runner.lint_preflight = lambda names: 'stub'\n"
            "sys.exit(runner.main(['--out', sys.argv[2]]))\n"
        )
        env = dict(os.environ)
        src = Path(runner.__file__).resolve().parents[2]
        env["PYTHONPATH"] = str(src)
        proc = subprocess.Popen(
            [sys.executable, str(driver), str(marker), str(out_dir)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 30
            while not marker.exists():
                assert time.monotonic() < deadline, "section never started"
                assert proc.poll() is None, "runner died before the signal"
                time.sleep(0.02)
            proc.send_signal(_signal.SIGTERM)
            _, stderr = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == runner.EXIT_INTERRUPTED == 75, (
            stderr.decode()
        )
        # The in-flight section ran to completion and was committed...
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["sections"]["slow"]["status"] == "ok"
        assert "slow output" in (out_dir / "slow.txt").read_text()
        # ... the next section never started, and the batch-level
        # outputs were still written atomically.
        assert "tail" not in manifest["sections"]
        assert not (out_dir / "tail.txt").exists()
        assert (out_dir / "all_experiments.txt").exists()
        assert json.loads((out_dir / "failures.json").read_text()) == []
        assert b"--resume" in stderr
