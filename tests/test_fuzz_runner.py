"""Campaign driver: determinism, graceful failure handling, sandbox."""

import pytest

from repro.fuzz.runner import (
    FuzzConfig,
    build_cases,
    execute_case_inline,
    run_fuzz,
)
from repro.fuzz.sandbox import (
    STATUS_OK,
    STATUS_OOM,
    STATUS_TIMEOUT,
    run_sandboxed,
)


class TestDeterminism:
    def test_case_list_is_reproducible(self):
        config = FuzzConfig(budget=20, seed=5, sandbox=False)
        a = build_cases(config)
        b = build_cases(config)
        assert [c.text for c in a] == [c.text for c in b]
        assert [c.mutations for c in a] == [c.mutations for c in b]

    def test_seed_changes_cases(self):
        a = build_cases(FuzzConfig(budget=20, seed=1, sandbox=False))
        b = build_cases(FuzzConfig(budget=20, seed=2, sandbox=False))
        assert [c.text for c in a] != [c.text for c in b]

    def test_report_is_byte_identical(self):
        config = FuzzConfig(budget=25, seed=0, sandbox=False)
        r1 = run_fuzz(config)
        r2 = run_fuzz(config)
        assert r1.render() == r2.render()
        assert r1.to_dict() == r2.to_dict()

    def test_counts_cover_budget(self):
        report = run_fuzz(FuzzConfig(budget=25, seed=3, sandbox=False))
        assert sum(report.counts.values()) == 25
        assert len(report.results) == 25


class TestGracefulFailures:
    def test_inline_execution_never_raises(self):
        horrors = ["", "\x00\x01", "x = AND(", "INPUT(a)\n" * 500]
        for text in horrors:
            payload = execute_case_inline(text, seed=0, case_id=0)
            assert payload["outcome"] in (
                "pass", "reject", "violation", "crash"
            )

    def test_clean_campaign_is_clean(self):
        report = run_fuzz(FuzzConfig(budget=25, seed=0, sandbox=False))
        assert report.clean
        assert report.buckets == []


def _sleepy() -> dict:
    import time
    time.sleep(30)
    return {}


def _hungry() -> dict:
    block = []
    while True:
        block.append(bytearray(16 * 1024 * 1024))


def _fine() -> dict:
    return {"outcome": "pass"}


@pytest.mark.slow
class TestSandbox:
    def test_ok(self):
        verdict = run_sandboxed(_fine, (), timeout_s=10.0)
        assert verdict.status == STATUS_OK
        assert verdict.payload == {"outcome": "pass"}

    def test_timeout(self):
        verdict = run_sandboxed(_sleepy, (), timeout_s=0.5)
        assert verdict.status == STATUS_TIMEOUT

    def test_oom(self):
        verdict = run_sandboxed(
            _hungry, (), timeout_s=30.0, mem_bytes=256 * 1024 * 1024
        )
        assert verdict.status == STATUS_OOM

    def test_sandboxed_campaign_matches_inline(self):
        """The sandbox must not change verdicts, only contain them."""
        inline = run_fuzz(FuzzConfig(budget=10, seed=0, sandbox=False))
        boxed = run_fuzz(FuzzConfig(budget=10, seed=0, sandbox=True))
        assert inline.render() == boxed.render()


class TestMinimizeAndCorpus:
    def test_corpus_written_for_failures(self, tmp_path, monkeypatch):
        """Force a crash via a stubbed oracle battery; check triage output."""
        import repro.fuzz.runner as runner_mod

        def exploding(text, seed, case_id):
            if "DFF" in text or "AND" in text:
                return {
                    "outcome": "crash",
                    "oracle": "parse-contract",
                    "error_type": "RuntimeError",
                    "fingerprint": "deadbeef0000",
                    "message": "RuntimeError: injected",
                    "reject_codes": (),
                }
            return {
                "outcome": "pass", "oracle": "", "error_type": "",
                "fingerprint": "", "message": "", "reject_codes": (),
            }

        monkeypatch.setattr(runner_mod, "execute_case_inline", exploding)
        report = run_fuzz(FuzzConfig(
            budget=12, seed=0, sandbox=False,
            corpus_dir=str(tmp_path), minimize=False,
        ))
        assert not report.clean
        assert len(report.buckets) == 1
        assert report.buckets[0].fingerprint == "deadbeef0000"
        assert report.corpus_files
        assert (tmp_path / "crash-deadbeef0000.bench").exists()
