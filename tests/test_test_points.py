"""Tests for test point insertion."""

import pytest

from repro.atpg.scoap import compute_scoap
from repro.core.test_points import (
    TestPoint,
    insert_test_points,
    plan_test_points,
    select_test_points,
)
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.circuit.validate import validate_circuit
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator, ScanTest
from repro.faults.model import Fault
from repro.rpg.prng import make_source
from repro.simulation.compiled import CompiledModel
from repro.simulation.sequential import simulate_test


def deep_circuit() -> Circuit:
    """An 8-input AND tree feeding a flop: classic random-resistant."""
    c = Circuit("deep")
    for i in range(8):
        c.add_input(f"i{i}")
    c.add_output("y")
    c.add_gate("t0", GateType.AND, ["i0", "i1", "i2", "i3"])
    c.add_gate("t1", GateType.AND, ["i4", "i5", "i6", "i7"])
    c.add_gate("hard", GateType.AND, ["t0", "t1"])
    c.add_flop("q", "hard")
    c.add_gate("y", GateType.BUF, ["q"])
    return c


class TestSelection:
    def test_targets_driver_inputs_not_the_site(self):
        """A control point on the fault site itself would mask the fault;
        selection must target the driving gate's inputs instead."""
        c = deep_circuit()
        points = select_test_points(c, [Fault(site="hard", value=0)], max_points=4)
        assert points
        assert all(p.net != "hard" for p in points)
        assert {p.net for p in points} <= {"t0", "t1"}

    def test_control_kind_matches_polarity(self):
        c = deep_circuit()
        # s-a-0 needs the site at 1: AND needs all inputs 1 -> control1.
        points = select_test_points(c, [Fault(site="hard", value=0)], max_points=2)
        assert all(p.kind == "control1" for p in points)

    def test_dedup_per_net(self):
        c = deep_circuit()
        faults = [Fault(site="hard", value=0), Fault(site="hard", value=1)]
        points = select_test_points(c, faults, max_points=8)
        assert len({p.net for p in points}) == len(points)

    def test_max_points_respected(self):
        c = deep_circuit()
        faults = [Fault(site=n, value=0) for n in ("t0", "t1", "hard")]
        assert len(select_test_points(c, faults, max_points=2)) <= 2


class TestInsertion:
    def test_instrumented_circuit_valid(self):
        c = deep_circuit()
        plan = plan_test_points(c, [Fault(site="hard", value=0)], max_points=2)
        validate_circuit(plan.circuit)

    def test_observe_point_adds_flop(self):
        c = deep_circuit()
        inst = insert_test_points(c, [TestPoint(kind="observe", net="t0")])
        assert inst.num_state_vars == c.num_state_vars + 1
        assert inst.num_inputs == c.num_inputs

    def test_control_point_adds_enable_input(self):
        c = deep_circuit()
        inst = insert_test_points(c, [TestPoint(kind="control1", net="t0")])
        assert "TEN" in inst.inputs

    def test_functionally_transparent_when_disabled(self):
        """With TEN = 0 the instrumented circuit behaves identically."""
        c = deep_circuit()
        inst = insert_test_points(
            c,
            [
                TestPoint(kind="control1", net="t0"),
                TestPoint(kind="control0", net="t1"),
            ],
        )
        m_orig = CompiledModel(c)
        m_inst = CompiledModel(inst)
        src = make_source(5)
        for _ in range(20):
            si = src.bits(1)
            vec = src.bits(8)
            t_orig = simulate_test(m_orig, si, [vec])
            t_inst = simulate_test(m_inst, si, [vec + [0]])  # TEN = 0
            assert t_orig.outputs == t_inst.outputs

    def test_coverage_improves_with_test_points(self):
        """The Section 1 claim: test points raise random-pattern coverage
        of resistant faults."""
        c = deep_circuit()
        hard = Fault(site="hard", value=0)  # needs all 8 inputs = 1

        def random_coverage(circuit, fault, n_tests=60, seed=3):
            sim = FaultSimulator(circuit)
            src = make_source(seed)
            tests = [
                ScanTest(
                    si=src.bits(circuit.num_state_vars),
                    vectors=[src.bits(circuit.num_inputs)],
                )
                for _ in range(n_tests)
            ]
            return len(sim.simulate_grouped(tests, [fault]))

        base = random_coverage(c, hard)
        plan = plan_test_points(c, [hard], max_points=2)
        inst_cov = random_coverage(plan.circuit, hard)
        # P(activation) goes from 2^-8 to ~(1/2)^2 per test.
        assert inst_cov >= base
        assert inst_cov == 1

    def test_plan_summary(self):
        c = deep_circuit()
        plan = plan_test_points(c, [Fault(site="hard", value=0)], max_points=2)
        assert "test points" in plan.summary()
