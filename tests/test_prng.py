"""Tests for random sources and weighted patterns."""

import pytest

from repro.rpg.prng import DRAW_BITS, LfsrSource, NumpySource, make_source
from repro.rpg.weighted import (
    CLASSIC_WEIGHTS,
    WeightedSource,
    profile_weights,
    uniform_weights,
)


@pytest.fixture(params=["numpy", "lfsr"])
def source_kind(request):
    return request.param


class TestSources:
    def test_reproducible(self, source_kind):
        a = make_source(42, source_kind)
        b = make_source(42, source_kind)
        assert a.bits(100) == b.bits(100)
        assert [a.draw() for _ in range(10)] == [b.draw() for _ in range(10)]

    def test_seeds_differ(self, source_kind):
        a = make_source(1, source_kind)
        b = make_source(2, source_kind)
        assert a.bits(64) != b.bits(64)

    def test_draw_range(self, source_kind):
        src = make_source(7, source_kind)
        for _ in range(200):
            assert 0 <= src.draw() < 2**DRAW_BITS

    def test_mod_draw(self, source_kind):
        src = make_source(7, source_kind)
        values = [src.mod_draw(10) for _ in range(500)]
        assert all(0 <= v < 10 for v in values)
        assert len(set(values)) == 10  # all residues appear

    def test_mod_draw_validates(self, source_kind):
        with pytest.raises(ValueError):
            make_source(1, source_kind).mod_draw(0)

    def test_mod_draw_probability(self, source_kind):
        """r mod D == 0 with probability ~1/D (the Procedure 1 test)."""
        src = make_source(3, source_kind)
        d = 4
        n = 4000
        zeros = sum(1 for _ in range(n) if src.mod_draw(d) == 0)
        assert abs(zeros / n - 1 / d) < 0.03

    def test_fork_is_independent_and_reproducible(self, source_kind):
        a = make_source(9, source_kind)
        f1 = a.fork(1)
        f2 = make_source(9, source_kind).fork(1)
        assert f1.bits(64) == f2.bits(64)
        assert make_source(9, source_kind).fork(2).bits(64) != make_source(
            9, source_kind
        ).fork(1).bits(64)

    def test_bits_are_bits(self, source_kind):
        assert set(make_source(5, source_kind).bits(256)) <= {0, 1}

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_source(1, "quantum")

    def test_lfsr_source_nonpositive_seed(self):
        # Must not crash; negative/zero seeds are remapped.
        LfsrSource(0).bits(8)
        LfsrSource(-5).bits(8)


class TestWeighted:
    def test_uniform_weights(self):
        assert uniform_weights(3) == [0.5, 0.5, 0.5]

    def test_rejects_off_grid_weight(self):
        with pytest.raises(ValueError):
            WeightedSource(make_source(1), [0.3])
        with pytest.raises(ValueError):
            WeightedSource(make_source(1), [1.5])
        with pytest.raises(ValueError):
            WeightedSource(make_source(1), [])

    @pytest.mark.parametrize("w", CLASSIC_WEIGHTS)
    def test_empirical_frequency(self, w):
        src = WeightedSource(make_source(123), [w])
        n = 4000
        ones = sum(src.bit(0) for _ in range(n))
        assert abs(ones / n - w) < 0.04

    def test_extreme_weights(self):
        always = WeightedSource(make_source(1), [1.0])
        never = WeightedSource(make_source(1), [0.0])
        assert all(always.bit(0) for _ in range(50))
        assert not any(never.bit(0) for _ in range(50))

    def test_pattern_uses_position_weights(self):
        src = WeightedSource(make_source(5), [1.0, 0.0])
        pat = src.pattern(6)
        assert pat[0::2] == [1, 1, 1]
        assert pat[1::2] == [0, 0, 0]

    def test_profile_weights(self):
        w = profile_weights([9, 0, 5], [10, 10, 10])
        assert w[0] == 0.875  # clamped to ceiling
        assert w[1] == 0.125  # clamped to floor
        assert w[2] == 0.5

    def test_profile_weights_empty_total(self):
        assert profile_weights([0], [0]) == [0.5]

    def test_profile_weights_validates(self):
        with pytest.raises(ValueError):
            profile_weights([1], [1, 2])
