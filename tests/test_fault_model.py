"""Tests for the fault universe and the fault graph mapping."""

import pytest

from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.faults.model import Fault, FaultGraph, fault_key, generate_faults


class TestGenerateFaults:
    def test_two_faults_per_line(self, s27):
        faults = generate_faults(s27)
        stems = [f for f in faults if not f.is_branch]
        branches = [f for f in faults if f.is_branch]
        assert len(stems) == 2 * len(s27.signals())
        assert len(branches) % 2 == 0
        assert len(set(faults)) == len(faults)  # no duplicates

    def test_s27_universe_size(self, s27):
        # 17 nets -> 34 stem faults; fanout stems G8(2), G11(3), G12(2),
        # G14(2) -> 9 branches -> 18 branch faults. Total 52.
        faults = generate_faults(s27)
        assert len(faults) == 52

    def test_branch_faults_only_on_fanout(self, s27):
        faults = generate_faults(s27)
        branch_sites = {f.site for f in faults if f.is_branch}
        assert branch_sites == {"G8", "G11", "G12", "G14"}

    def test_po_tap_creates_branch(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("t")
        c.add_gate("t", GateType.NOT, ["a"])
        c.add_gate("y", GateType.BUF, ["t"])
        c.add_output("y")
        faults = generate_faults(c)
        assert any(f.is_branch and f.site == "t" for f in faults)

    def test_fault_str(self):
        assert str(Fault(site="G8", value=1)) == "G8 s-a-1"
        f = Fault(site="G8", value=0, consumer="G15", pin=1)
        assert "G8->G15.1 s-a-0" == str(f)

    def test_fault_key_total_order(self, s27):
        faults = generate_faults(s27)
        ordered = sorted(faults, key=fault_key)
        assert len(ordered) == len(faults)


class TestFaultGraph:
    def test_every_fault_maps_to_a_net(self, s27):
        graph = FaultGraph(s27)
        for fault in generate_faults(s27):
            sig = graph.signal_of(fault)
            assert 0 <= sig < graph.model.n_signals

    def test_stem_maps_to_itself(self, s27):
        graph = FaultGraph(s27)
        f = Fault(site="G8", value=0)
        assert graph.net_of(f) == "G8"

    def test_branch_maps_to_buffer(self, s27):
        graph = FaultGraph(s27)
        branch = next(
            f for f in generate_faults(s27) if f.is_branch and f.site == "G11"
        )
        net = graph.net_of(branch)
        assert net.startswith("G11$b")

    def test_distinct_branches_map_to_distinct_nets(self, s27):
        graph = FaultGraph(s27)
        branches = [
            f for f in generate_faults(s27) if f.is_branch and f.value == 0
        ]
        nets = [graph.net_of(f) for f in branches]
        assert len(set(nets)) == len(nets)

    def test_wide_gate_pins_map_through_decomposition(self):
        c = Circuit()
        for n in "abcd":
            c.add_input(n)
        c.add_output("y")
        c.add_gate("t", GateType.BUF, ["a"])  # make 'a' fan out
        c.add_gate("y", GateType.NAND, ["a", "b", "c", "d"])
        graph = FaultGraph(c)
        pin_fault = Fault(site="a", value=1, consumer="y", pin=0)
        net = graph.net_of(pin_fault)
        # The branch buffer reads the stem 'a'.
        gate = graph.sim_circuit.gate_for(net)
        assert gate.inputs == ("a",)

    def test_injection_entry_shape(self, s27_graph):
        fault = Fault(site="G8", value=1)
        sig, word, bit, value = s27_graph.injection_entry(fault, 2, 7)
        assert word == 2 and bit == 7 and value == 1
        assert sig == s27_graph.signal_of(fault)
