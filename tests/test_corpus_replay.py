"""Replay every checked-in fuzz corpus entry (tier-1 regression gate).

Each file under ``tests/corpus/`` is a minimized fuzzing discovery with
an ``# expect:`` header recording the correct post-fix behavior; a
replay failure means a fixed bug has regressed.
"""

from pathlib import Path

import pytest

from repro.fuzz.corpus import load_entry, replay_entry

CORPUS_DIR = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS_DIR.glob("*.bench"))


def test_corpus_is_not_empty():
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", ENTRIES, ids=[p.stem for p in ENTRIES]
)
def test_corpus_entry_replays(path):
    entry = load_entry(path)
    problem = replay_entry(entry)
    assert problem is None, f"{path.name}: {problem}"
