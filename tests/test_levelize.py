"""Tests for levelization."""

import pytest

from repro.circuit.levelize import CombinationalCycleError, levelize
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit


class TestLevelize:
    def test_levels_respect_dependencies(self, s27):
        lev = levelize(s27)
        for gate in s27.iter_gates():
            out_level = lev.level_of[gate.output]
            for src in gate.inputs:
                assert lev.level_of[src] < out_level

    def test_inputs_and_flops_are_level_zero(self, s27):
        lev = levelize(s27)
        for net in s27.inputs + s27.state_vars:
            assert lev.level_of[net] == 0

    def test_order_is_topological(self, medium_synth):
        lev = levelize(medium_synth)
        position = {g.output: i for i, g in enumerate(lev.order)}
        for gate in medium_synth.iter_gates():
            for src in gate.inputs:
                if src in position:
                    assert position[src] < position[gate.output]

    def test_levels_partition_order(self, s27):
        lev = levelize(s27)
        flattened = [g for level in lev.levels for g in level]
        assert flattened == lev.order
        assert lev.depth == len(lev.levels)

    def test_exact_levels(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("y")
        c.add_gate("t1", GateType.NOT, ["a"])
        c.add_gate("t2", GateType.NOT, ["t1"])
        c.add_gate("y", GateType.AND, ["a", "t2"])
        lev = levelize(c)
        assert lev.level_of["t1"] == 1
        assert lev.level_of["t2"] == 2
        assert lev.level_of["y"] == 3

    def test_const_gate_is_level_one(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("y")
        c.add_gate("k", GateType.CONST1, [])
        c.add_gate("y", GateType.AND, ["a", "k"])
        lev = levelize(c)
        assert lev.level_of["k"] == 1

    def test_combinational_cycle_detected(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("x")
        c.add_gate("x", GateType.AND, ["a", "y"])
        c.add_gate("y", GateType.AND, ["a", "x"])
        with pytest.raises(CombinationalCycleError):
            levelize(c)

    def test_cycle_through_flop_is_fine(self, s27):
        # s27 has feedback, but always through DFFs.
        lev = levelize(s27)
        assert lev.depth > 0

    def test_undriven_net_raises(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("y")
        c.add_gate("y", GateType.AND, ["a", "ghost"])
        with pytest.raises(KeyError, match="ghost"):
            levelize(c)

    def test_empty_combinational_core(self):
        c = Circuit()
        c.add_input("a")
        c.add_flop("q", "a")
        lev = levelize(c)
        assert lev.depth == 0
        assert lev.order == []
