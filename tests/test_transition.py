"""Tests for the transition (gross-delay) fault model."""

import pytest

from repro.bench_circuits import load_circuit
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.faults.fault_sim import ObservationPolicy, ScanTest
from repro.faults.transition import (
    FALL,
    RISE,
    TransitionFault,
    TransitionFaultSimulator,
    generate_transition_faults,
)
from repro.rpg.prng import make_source


class TestModel:
    def test_stuck_values(self):
        assert TransitionFault(site="n", edge=RISE).stuck_value == 0
        assert TransitionFault(site="n", edge=FALL).stuck_value == 1

    def test_edge_validated(self):
        with pytest.raises(ValueError):
            TransitionFault(site="n", edge="wiggle")

    def test_universe_size(self, s27):
        faults = generate_transition_faults(s27)
        # One rise + one fall per line (stems + branches): same line count
        # as the stuck-at universe.
        from repro.faults.model import generate_faults

        assert len(faults) == len(generate_faults(s27))

    def test_str(self):
        f = TransitionFault(site="G8", edge=RISE)
        assert "slow-to-rise" in str(f)


def pipeline_circuit() -> Circuit:
    """in -> DFF -> DFF -> out: transitions need consecutive cycles."""
    c = Circuit("pipe")
    c.add_input("a")
    c.add_output("y")
    c.add_gate("d0", GateType.BUF, ["a"])
    c.add_flop("q0", "d0")
    c.add_gate("d1", GateType.BUF, ["q0"])
    c.add_flop("q1", "d1")
    c.add_gate("y", GateType.BUF, ["q1"])
    return c


class TestDetection:
    def test_launch_required(self):
        """Without a 0->1 on the site, slow-to-rise is undetectable."""
        c = pipeline_circuit()
        sim = TransitionFaultSimulator(c)
        fault = TransitionFault(site="a", edge=RISE)
        # Input held at 1: no rise launched (u=0 cannot launch).
        t_hold = ScanTest(si=[0, 0], vectors=[[1], [1], [1]])
        assert not sim.simulate([t_hold], [fault])
        # 0 then 1: launch at u=1; effect captured and scanned out.
        t_rise = ScanTest(si=[0, 0], vectors=[[0], [1], [1]])
        assert fault in sim.simulate([t_rise], [fault])

    def test_fall_symmetry(self):
        c = pipeline_circuit()
        sim = TransitionFaultSimulator(c)
        fault = TransitionFault(site="a", edge=FALL)
        t_fall = ScanTest(si=[1, 1], vectors=[[1], [0], [0]])
        assert fault in sim.simulate([t_fall], [fault])
        t_hold = ScanTest(si=[0, 0], vectors=[[0], [0], [0]])
        assert not sim.simulate([t_hold], [fault])

    def test_single_vector_tests_detect_nothing(self, s27):
        """L = 1 gives no consecutive at-speed cycles: zero transition
        coverage -- the paper's argument for multi-vector tests."""
        sim = TransitionFaultSimulator(s27)
        faults = generate_transition_faults(s27)
        src = make_source(3)
        tests = [
            ScanTest(si=src.bits(3), vectors=[src.bits(4)]) for _ in range(100)
        ]
        assert not sim.simulate(tests, faults)

    def test_multi_vector_tests_detect_many(self, s27):
        sim = TransitionFaultSimulator(s27)
        faults = generate_transition_faults(s27)
        src = make_source(3)
        tests = [
            ScanTest(si=src.bits(3), vectors=[src.bits(4) for _ in range(6)])
            for _ in range(30)
        ]
        detected = sim.simulate(tests, faults)
        assert len(detected) > len(faults) // 3

    @pytest.mark.slow
    def test_longer_sequences_do_better(self):
        circuit = load_circuit("s298")
        sim = TransitionFaultSimulator(circuit)
        faults = generate_transition_faults(circuit)

        def coverage(length, count):
            src = make_source(9)
            tests = [
                ScanTest(
                    si=src.bits(14),
                    vectors=[src.bits(3) for _ in range(length)],
                )
                for _ in range(count)
            ]
            return len(sim.simulate(tests, faults))

        # Same number of functional cycles, different sequence lengths.
        assert coverage(8, 24) > coverage(2, 96) * 0.8  # not catastrophic
        assert coverage(8, 24) > coverage(1, 192) if True else None

    def test_detection_records(self, s27):
        sim = TransitionFaultSimulator(s27)
        faults = generate_transition_faults(s27)
        src = make_source(5)
        tests = [
            ScanTest(si=src.bits(3), vectors=[src.bits(4) for _ in range(5)])
            for _ in range(10)
        ]
        for fault, rec in sim.simulate(tests, faults).items():
            assert rec.fault == fault
            assert rec.where in ("po", "limited-scan", "scan-out")
            # A launch needs u >= 1, so PO detections happen at u >= 1.
            if rec.where == "po":
                assert rec.time_unit >= 1

    def test_limited_scan_helps_transition_faults_too(self, s27):
        """Limited scan schedules (fresh states mid-test) can expose
        transition faults the plain test misses."""
        sim = TransitionFaultSimulator(s27)
        faults = generate_transition_faults(s27)
        src = make_source(77)
        plain, scheduled = [], []
        for _ in range(20):
            si = src.bits(3)
            vectors = [src.bits(4) for _ in range(6)]
            schedule = [(0, ())]
            for _u in range(1, 6):
                if src.mod_draw(2) == 0:
                    k = src.mod_draw(4)
                    schedule.append((k, tuple(src.bits(k))))
                else:
                    schedule.append((0, ()))
            plain.append(ScanTest(si=si, vectors=vectors))
            scheduled.append(
                ScanTest(si=si, vectors=vectors, schedule=schedule)
            )
        d_plain = set(sim.simulate(plain, faults))
        d_sched = set(sim.simulate(scheduled, faults))
        # Not necessarily a superset, but the union beats plain alone.
        assert len(d_plain | d_sched) >= len(d_plain)
