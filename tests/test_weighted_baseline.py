"""Tests for the weighted random pattern baseline."""

import pytest

pytestmark = pytest.mark.slow

from repro.core.baselines import single_vector_bist, weighted_random_bist
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator


@pytest.fixture(scope="module")
def setup():
    from repro.bench_circuits import load_circuit

    circuit = load_circuit("s208")
    return circuit, FaultSimulator(circuit), collapse_faults(circuit)


class TestWeightedRandomBist:
    def test_runs_within_budget(self, setup):
        circuit, sim, faults = setup
        res = weighted_random_bist(
            circuit, faults, cycle_budget=3_000, simulator=sim
        )
        assert res.cycles <= 3_000
        assert res.name == "weighted-random-BIST"

    def test_zero_budget(self, setup):
        circuit, sim, faults = setup
        res = weighted_random_bist(circuit, faults, cycle_budget=0, simulator=sim)
        assert res.detected == 0

    def test_deterministic(self, setup):
        circuit, sim, faults = setup
        a = weighted_random_bist(circuit, faults, cycle_budget=2_000, simulator=sim)
        b = weighted_random_bist(circuit, faults, cycle_budget=2_000, simulator=sim)
        assert a.detected == b.detected

    def test_competitive_with_unweighted(self, setup):
        """Weighting is designed to help hard faults; over a meaningful
        budget it should be at least roughly comparable to uniform."""
        circuit, sim, faults = setup
        budget = 20_000
        weighted = weighted_random_bist(
            circuit, faults, cycle_budget=budget, simulator=sim
        )
        uniform = single_vector_bist(
            circuit, faults, cycle_budget=budget, simulator=sim
        )
        assert weighted.detected >= uniform.detected * 0.8
