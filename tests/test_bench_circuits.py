"""Tests for the benchmark catalog and the synthetic generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench_circuits.catalog import (
    available_circuits,
    circuit_info,
    load_circuit,
)
from repro.bench_circuits.s27 import S27_BENCH, s27_circuit
from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.circuit.bench_parser import write_bench
from repro.circuit.validate import find_dangling, validate_circuit


class TestS27:
    def test_is_the_real_netlist(self):
        c = s27_circuit()
        assert c.num_inputs == 4
        assert c.num_outputs == 1
        assert c.num_state_vars == 3
        assert c.num_gates == 10
        # The canonical collapsed fault count (see test_collapse).

    def test_bench_text_parses(self):
        assert "G17 = NOT(G11)" in S27_BENCH


class TestCatalog:
    def test_all_paper_circuits_present(self):
        names = set(available_circuits())
        expected = {
            "s27", "s208", "s298", "s344", "s382", "s400", "s420", "s510",
            "s641", "s820", "s953", "s1196", "s1423", "s5378", "s35932",
            "b01", "b02", "b03", "b04", "b06", "b09", "b10", "b11",
        }
        assert expected <= names

    def test_tier_filter(self):
        small = available_circuits(tier="small")
        assert "s208" in small
        assert "s5378" not in small
        # s5378 (2779 gates) is mid-pack once the full ISCAS-89 set is
        # in: the large tier starts at the real-silicon sizes.
        assert "s5378" in available_circuits(tier="medium")
        large = available_circuits(tier="large")
        assert "s5378" not in large
        for name in ("s9234", "s13207", "s15850", "s35932", "s38417", "s38584"):
            assert name in large

    def test_unknown_circuit(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            circuit_info("s9999")

    @pytest.mark.parametrize(
        "name", ["s208", "s298", "s420", "b01", "b09", "s953"]
    )
    def test_interface_matches_published_stats(self, name):
        entry = circuit_info(name)
        circuit = load_circuit(name)
        assert circuit.num_inputs == entry.n_pi
        assert circuit.num_outputs == entry.n_po
        assert circuit.num_state_vars == entry.n_ff
        assert circuit.num_gates == entry.n_gates

    def test_nsv_for_table5_circuits(self):
        """The Table 5 N_SV values must be realized by the catalog."""
        assert load_circuit("s382").num_state_vars == 21
        assert load_circuit("s400").num_state_vars == 21
        assert load_circuit("s1423").num_state_vars == 74

    @pytest.mark.parametrize("name", ["s208", "b01", "s382"])
    def test_deterministic(self, name):
        a = write_bench(load_circuit(name))
        b = write_bench(load_circuit(name))
        assert a == b

    @pytest.mark.parametrize("name", available_circuits(tier="small"))
    def test_small_tier_is_structurally_valid(self, name):
        circuit = load_circuit(name)
        validate_circuit(circuit)
        assert len(find_dangling(circuit)) <= 2


class TestSyntheticGenerator:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(name="x", n_pi=0, n_po=1, n_ff=1, n_gates=10)
        with pytest.raises(ValueError):
            SyntheticSpec(name="x", n_pi=1, n_po=0, n_ff=0, n_gates=10)
        with pytest.raises(ValueError):
            SyntheticSpec(name="x", n_pi=1, n_po=5, n_ff=5, n_gates=3)

    def test_seed_from_name(self):
        a = SyntheticSpec(name="foo", n_pi=2, n_po=1, n_ff=1, n_gates=10)
        b = SyntheticSpec(name="foo", n_pi=2, n_po=1, n_ff=1, n_gates=10)
        assert a.resolved_seed() == b.resolved_seed()
        c = SyntheticSpec(name="bar", n_pi=2, n_po=1, n_ff=1, n_gates=10)
        assert a.resolved_seed() != c.resolved_seed()

    def test_explicit_seed_wins(self):
        s = SyntheticSpec(name="foo", n_pi=2, n_po=1, n_ff=1, n_gates=10, seed=3)
        assert s.resolved_seed() == 3

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n_pi=st.integers(min_value=1, max_value=12),
        n_po=st.integers(min_value=1, max_value=6),
        n_ff=st.integers(min_value=0, max_value=10),
        n_gates=st.integers(min_value=20, max_value=120),
    )
    def test_generator_property(self, seed, n_pi, n_po, n_ff, n_gates):
        """Every generated circuit is valid, matches its spec, has no
        combinational cycles and (almost) no dangling nets."""
        spec = SyntheticSpec(
            name="h", n_pi=n_pi, n_po=n_po, n_ff=n_ff, n_gates=n_gates,
            seed=seed,
        )
        circuit = synthesize(spec)
        validate_circuit(circuit)  # includes cycle check
        assert circuit.num_inputs == n_pi
        assert circuit.num_outputs == n_po
        assert circuit.num_state_vars == n_ff
        assert circuit.num_gates == n_gates
        dangling = find_dangling(circuit)
        assert len(dangling) <= max(2, len(circuit.signals()) // 20)
