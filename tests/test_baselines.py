"""Tests for the baseline schemes."""

import pytest

from repro.core.baselines import (
    full_scan_insertion,
    multi_seed,
    single_vector_bist,
    ts0_only,
)
from repro.core.config import BistConfig
from repro.core.cost import ncyc0
from repro.core.limited_scan import build_limited_scan_test_set
from repro.core.test_set import generate_ts0
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator


@pytest.fixture(scope="module")
def setup():
    from repro.bench_circuits.s27 import s27_circuit

    circuit = s27_circuit()
    return circuit, FaultSimulator(circuit), collapse_faults(circuit)


class TestTs0Only:
    def test_cycles_match_formula(self, setup):
        circuit, sim, faults = setup
        cfg = BistConfig(la=4, lb=8, n=4)
        res = ts0_only(circuit, cfg, faults, simulator=sim)
        assert res.cycles == ncyc0(3, 4, 8, 4)
        assert 0 < res.detected <= len(faults)
        assert 0.0 < res.coverage <= 1.0

    def test_summary(self, setup):
        circuit, sim, faults = setup
        res = ts0_only(circuit, BistConfig(la=4, lb=8, n=4), faults, simulator=sim)
        assert "TS0-only" in res.summary()


class TestMultiSeed:
    def test_respects_budget(self, setup):
        circuit, sim, faults = setup
        cfg = BistConfig(la=4, lb=8, n=4)
        per_app = ncyc0(3, 4, 8, 4)
        res = multi_seed(circuit, cfg, faults, cycle_budget=per_app * 3, simulator=sim)
        assert res.cycles <= per_app * 3
        assert res.applications <= 3

    def test_more_budget_never_worse(self, setup):
        circuit, sim, faults = setup
        cfg = BistConfig(la=4, lb=8, n=4)
        per_app = ncyc0(3, 4, 8, 4)
        small = multi_seed(circuit, cfg, faults, cycle_budget=per_app, simulator=sim)
        large = multi_seed(
            circuit, cfg, faults, cycle_budget=per_app * 8, simulator=sim
        )
        assert large.detected >= small.detected

    def test_stops_early_at_full_coverage(self, setup):
        circuit, sim, faults = setup
        cfg = BistConfig(la=8, lb=16, n=64)
        res = multi_seed(
            circuit, cfg, faults, cycle_budget=10**9, simulator=sim
        )
        # s27 is easy: a couple of applications at most.
        assert res.applications < 10


class TestSingleVectorBist:
    def test_respects_budget(self, setup):
        circuit, sim, faults = setup
        res = single_vector_bist(
            circuit, faults, cycle_budget=400, simulator=sim
        )
        assert res.cycles <= 400

    def test_zero_budget(self, setup):
        circuit, sim, faults = setup
        res = single_vector_bist(circuit, faults, cycle_budget=0, simulator=sim)
        assert res.detected == 0
        assert res.cycles == 0

    def test_reaches_high_coverage_on_s27(self, setup):
        circuit, sim, faults = setup
        res = single_vector_bist(
            circuit, faults, cycle_budget=50_000, simulator=sim
        )
        assert res.coverage == 1.0  # s27 is fully random-testable


class TestFullScanInsertion:
    def test_costs_more_than_limited(self, setup):
        """The paper's motivation: same insertion points, complete scans
        cost strictly more cycles (N_SV vs < N_SV shifts each)."""
        circuit, sim, faults = setup
        cfg = BistConfig(la=4, lb=8, n=8)
        ts0 = generate_ts0(circuit, cfg)
        ts = build_limited_scan_test_set(ts0, 1, 1, cfg, 3)
        limited_cycles = ncyc0(3, 4, 8, 8) + sum(
            t.total_shift_cycles for t in ts
        )
        res = full_scan_insertion(
            circuit, cfg, faults, iteration=1, d1=1, simulator=sim
        )
        assert res.cycles > limited_cycles

    def test_widened_schedules_are_complete_scans(self, setup):
        circuit, sim, faults = setup
        cfg = BistConfig(la=4, lb=8, n=2)
        res = full_scan_insertion(circuit, cfg, faults, simulator=sim)
        assert res.detected >= 0  # executed without error
        assert "full-scan-insertion" in res.name
