"""Tests for the .bench parser and writer."""

import pytest

from repro.bench_circuits.s27 import S27_BENCH
from repro.circuit.bench_parser import (
    BenchParseError,
    parse_bench,
    write_bench,
)
from repro.circuit.library import GateType


class TestParse:
    def test_parse_s27(self):
        c = parse_bench(S27_BENCH, name="s27")
        assert c.num_inputs == 4
        assert c.num_gates == 10
        assert c.state_vars == ["G5", "G6", "G7"]

    def test_comments_and_blank_lines(self):
        text = """
        # a comment
        INPUT(a)   # trailing comment
        OUTPUT(y)
        y = NOT(a)
        """
        c = parse_bench(text)
        assert c.num_inputs == 1
        assert c.gate_for("y").gtype is GateType.NOT

    def test_aliases(self):
        text = "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = INV(a)\nz = BUFF(a)\n"
        c = parse_bench(text)
        assert c.gate_for("y").gtype is GateType.NOT
        assert c.gate_for("z").gtype is GateType.BUF

    def test_case_insensitive_keywords(self):
        text = "input(a)\noutput(y)\ny = nand(a, a2)\ninput(a2)\n"
        c = parse_bench(text)
        assert c.gate_for("y").gtype is GateType.NAND

    def test_forward_references_allowed(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = AND(a, t)\nt = NOT(a)\n"
        c = parse_bench(text)
        assert c.num_gates == 2

    def test_unknown_gate_type(self):
        with pytest.raises(BenchParseError, match="unknown gate type"):
            parse_bench("INPUT(a)\ny = FROB(a)\n")

    def test_malformed_line(self):
        with pytest.raises(BenchParseError, match="line 2"):
            parse_bench("INPUT(a)\nthis is not bench\n")

    def test_dff_arity(self):
        with pytest.raises(BenchParseError, match="DFF"):
            parse_bench("INPUT(a)\nINPUT(b)\nq = DFF(a, b)\n")

    def test_duplicate_driver_reported_with_line(self):
        text = "INPUT(a)\ny = NOT(a)\ny = BUF(a)\n"
        with pytest.raises(BenchParseError, match="line 3"):
            parse_bench(text)


class TestRoundTrip:
    def test_s27_round_trip(self):
        c1 = parse_bench(S27_BENCH, name="s27")
        c2 = parse_bench(write_bench(c1), name="s27")
        assert c1.inputs == c2.inputs
        assert c1.outputs == c2.outputs
        assert c1.state_vars == c2.state_vars
        assert {g.output: (g.gtype, g.inputs) for g in c1.iter_gates()} == {
            g.output: (g.gtype, g.inputs) for g in c2.iter_gates()
        }

    def test_round_trip_preserves_scan_order(self, tiny_synth):
        text = write_bench(tiny_synth)
        back = parse_bench(text)
        assert back.state_vars == tiny_synth.state_vars

    def test_synthetic_round_trip(self, medium_synth):
        back = parse_bench(write_bench(medium_synth))
        assert back.num_gates == medium_synth.num_gates
        assert back.num_inputs == medium_synth.num_inputs
