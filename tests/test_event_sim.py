"""Tests for the event-driven simulator, including cross-engine checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.simulation.compiled import CompiledModel
from repro.simulation.event_sim import EventSimulator
from repro.simulation.sequential import simulate_test


class TestBasics:
    def test_initialize_and_read(self, mux_circuit):
        sim = EventSimulator(mux_circuit)
        sim.initialize([1, 0, 1], [0])  # a=1, b=0, sel=1
        assert sim.value("out") == 1
        sim.initialize([1, 0, 0], [0])  # sel=0 -> b
        assert sim.value("out") == 0

    def test_set_input_propagates(self, mux_circuit):
        sim = EventSimulator(mux_circuit)
        sim.initialize([1, 0, 1], [0])
        changed = sim.set_input("sel", 0)
        assert "out" in changed
        assert sim.value("out") == 0

    def test_no_change_no_events(self, mux_circuit):
        sim = EventSimulator(mux_circuit)
        sim.initialize([1, 0, 1], [0])
        before = sim.eval_count
        assert sim.set_input("a", 1) == set()
        assert sim.eval_count == before

    def test_blocked_propagation_stops_early(self, mux_circuit):
        """With sel=1, changes on b are blocked at the AND gate."""
        sim = EventSimulator(mux_circuit)
        sim.initialize([1, 0, 1], [0])
        changed = sim.set_input("b", 1)
        assert "out" not in changed  # t2 stays 0

    def test_validation(self, mux_circuit):
        sim = EventSimulator(mux_circuit)
        sim.initialize([0, 0, 0], [0])
        with pytest.raises(ValueError):
            sim.set_input("t1", 1)  # not an input
        with pytest.raises(ValueError):
            sim.set_input("a", 2)
        with pytest.raises(ValueError):
            sim.initialize([0], [0])

    def test_clock_latches_d(self, mux_circuit):
        sim = EventSimulator(mux_circuit)
        sim.initialize([1, 0, 1], [0])
        sim.clock()
        assert sim.value("q0") == 1

    def test_activity_factor(self, mux_circuit):
        sim = EventSimulator(mux_circuit)
        sim.initialize([1, 0, 1], [0])
        changed = sim.set_input("sel", 0)
        assert 0.0 < sim.activity_factor(changed) <= 1.0


class TestCrossEngine:
    def test_matches_compiled_on_s27(self, s27):
        """Cycle-by-cycle agreement with the compiled engine."""
        model = CompiledModel(s27)
        si = [0, 0, 1]
        vectors = [[0, 1, 1, 1], [1, 0, 0, 1], [0, 1, 1, 1], [1, 1, 0, 0]]
        trace = simulate_test(model, si, vectors)

        ev = EventSimulator(s27)
        ev.initialize(vectors[0], si)
        for u, vec in enumerate(vectors):
            if u > 0:
                ev.set_inputs(dict(zip(s27.inputs, vec)))
            assert "".join(map(str, ev.output_bits())) == trace.outputs[u]
            next_state = ev.next_state_bits()
            assert "".join(map(str, next_state)) == trace.states[u + 1]
            ev.clock()

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        stim=st.integers(min_value=0, max_value=2**30),
    )
    def test_matches_compiled_on_random_circuits(self, seed, stim):
        """Property: the two engines agree on random circuits/stimuli."""
        circuit = synthesize(
            SyntheticSpec(name="e", n_pi=5, n_po=2, n_ff=3, n_gates=30, seed=seed)
        )
        vectors = [
            [(stim >> (5 * u + i)) & 1 for i in range(5)] for u in range(4)
        ]
        si = [(stim >> (20 + i)) & 1 for i in range(3)]
        trace = simulate_test(CompiledModel(circuit), si, vectors)

        ev = EventSimulator(circuit)
        ev.initialize(vectors[0], si)
        for u, vec in enumerate(vectors):
            if u > 0:
                ev.set_inputs(dict(zip(circuit.inputs, vec)))
            assert "".join(map(str, ev.output_bits())) == trace.outputs[u]
            ev.clock()

    def test_event_count_less_than_full_eval(self, medium_synth):
        """Single-input flips must touch far fewer gates than full
        re-evaluation -- the point of event-driven simulation."""
        sim = EventSimulator(medium_synth)
        zeros = [0] * medium_synth.num_inputs
        sim.initialize(zeros, [0] * medium_synth.num_state_vars)
        full_cost = sim.eval_count
        sim.eval_count = 0
        for pi in medium_synth.inputs:
            sim.set_input(pi, 1)
            sim.set_input(pi, 0)
        avg = sim.eval_count / (2 * len(medium_synth.inputs))
        assert avg < full_cost / 2
