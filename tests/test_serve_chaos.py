"""Deterministic fault injection against the job service.

Every scenario here is seeded and replayable: chaos plans fire on
checkpoint-commit *counts*, not timers, so "the worker dies during
iteration 2" means exactly that on every run.  The invariant under
test is always the same one ``docs/serving.md`` promises -- nothing
acknowledged is ever lost, and recovery converges on the byte-identical
result an undisturbed run produces.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.bench_circuits import load_circuit
from repro.circuit.bench_parser import write_bench
from repro.robustness.chaos import SERVER_CHAOS_EXIT, truncate_tail
from repro.serve.budgets import JobBudget
from repro.serve.jobs import JobManager
from repro.serve.models import DONE, PARTIAL, QUEUED
from repro.serve.queue import MultiTenantQueue

pytestmark = [pytest.mark.serve, pytest.mark.chaos]

#: Incomplete on purpose: Procedure 2 runs its full iteration budget
#: (6 committed iterations on s27), so mid-run deaths have a target.
SLOW = {"n": 1, "la": 2, "lb": 4, "max_iterations": 8}


@pytest.fixture(scope="module")
def s27_bench():
    return write_bench(load_circuit("s27"))


@pytest.fixture(scope="module")
def clean_result(s27_bench, tmp_path_factory):
    """The undisturbed reference: same submission, no chaos."""
    tmp_path = tmp_path_factory.mktemp("clean")
    manager = JobManager(
        tmp_path / "serve",
        queue=MultiTenantQueue(burst=1000),
        budget=JobBudget(wall_s=120, mem_mb=None),
    )
    job = manager.submit({"bench": s27_bench, "name": "s27", "config": SLOW})
    manager.queue.pop()
    asyncio.run(manager.execute_one(job.job_id))
    assert job.state == DONE
    return manager.result(job.job_id)["result"]


def make_manager(tmp_path, max_retries=2):
    return JobManager(
        tmp_path / "serve",
        queue=MultiTenantQueue(burst=1000),
        budget=JobBudget(wall_s=120, mem_mb=None, max_retries=max_retries),
        allow_request_chaos=True,
    )


class TestWorkerDeath:
    def test_death_mid_run_retries_and_resumes_byte_identical(
        self, tmp_path, s27_bench, clean_result
    ):
        manager = make_manager(tmp_path)
        job = manager.submit({
            "bench": s27_bench, "name": "s27", "config": SLOW,
            "chaos": {"die_after_commits": 2},
        })
        manager.queue.pop()
        asyncio.run(manager.execute_one(job.job_id))

        assert job.state == DONE
        assert job.attempts == 2  # died once, resumed once
        got = manager.result(job.job_id)["result"]
        assert json.dumps(got, sort_keys=True) == json.dumps(
            clean_result, sort_keys=True
        )

    def test_death_at_different_commit_points_converges(
        self, tmp_path, s27_bench, clean_result
    ):
        """Where the worker dies must not change what it computes."""
        for commits in (1, 4):
            manager = make_manager(tmp_path / f"at{commits}")
            job = manager.submit({
                "bench": s27_bench, "name": "s27", "config": SLOW,
                "chaos": {"die_after_commits": commits},
            })
            manager.queue.pop()
            asyncio.run(manager.execute_one(job.job_id))
            assert job.state == DONE
            got = manager.result(job.job_id)["result"]
            assert json.dumps(got, sort_keys=True) == json.dumps(
                clean_result, sort_keys=True
            )


class TestGracefulDegradation:
    def test_retries_exhausted_serves_partial_from_checkpoint(
        self, tmp_path, s27_bench
    ):
        # fire_attempts=99: the bomb re-arms on every retry, so no
        # attempt can ever finish.  max_retries=0 exhausts immediately.
        manager = make_manager(tmp_path, max_retries=0)
        job = manager.submit({
            "bench": s27_bench, "name": "s27", "config": SLOW,
            "chaos": {"die_after_commits": 2, "fire_attempts": 99},
        })
        manager.queue.pop()
        asyncio.run(manager.execute_one(job.job_id))

        assert job.state == PARTIAL
        assert job.error["code"] == "B003"
        result = manager.result(job.job_id)
        assert result["partial"] is True
        # The partial result reflects the committed prefix: ts0 plus the
        # iterations that reached their cursor before the death.
        assert result["result"]["complete"] is False
        assert result["result"]["iterations_run"] >= 1
        assert result["result"]["metrics"]["fault_coverage"] > 0
        assert result["error"]["code"] == "B003"

    def test_partial_is_deterministic(self, tmp_path, s27_bench):
        def run(sub):
            manager = make_manager(tmp_path / sub, max_retries=0)
            job = manager.submit({
                "bench": s27_bench, "name": "s27", "config": SLOW,
                "chaos": {"die_after_commits": 3, "fire_attempts": 99},
            })
            manager.queue.pop()
            asyncio.run(manager.execute_one(job.job_id))
            return manager.result(job.job_id)["result"]

        a, b = run("a"), run("b")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestJournalTruncation:
    def test_torn_job_journal_tail_heals_on_restart(
        self, tmp_path, s27_bench
    ):
        manager = make_manager(tmp_path)
        kept = manager.submit(
            {"bench": s27_bench, "name": "s27", "config": SLOW}
        )
        torn = manager.submit({
            "bench": s27_bench, "name": "s27",
            "config": dict(SLOW, base_seed=9),
        })
        truncate_tail(manager.journal.path, 10)  # tear the second submit

        revived = make_manager(tmp_path)
        assert kept.job_id in revived.journal.jobs
        assert torn.job_id not in revived.journal.jobs
        assert revived.journal.healed_bytes > 0
        assert revived.queue.depth() == 1
        # The healed journal accepts new appends and serves the survivor.
        asyncio.run(revived.execute_one(kept.job_id))
        final = revived.result(kept.job_id)
        assert final["partial"] is False
        assert revived.journal.jobs[kept.job_id].state == DONE


def _serve_cmd(data_dir, extra=()):
    return [
        sys.executable, "-m", "repro", "serve",
        "--data-dir", str(data_dir),
        "--port", "0",
        "--enable-chaos",
        "--wall-budget", "120",
        "--retries", "2",
        *extra,
    ]


def _spawn(data_dir, extra=(), timeout_s=30.0):
    port_file = Path(data_dir) / "serve.port"
    if port_file.exists():
        port_file.unlink()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    proc = subprocess.Popen(
        _serve_cmd(data_dir, extra),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return proc, int(port_file.read_text().strip())
        if proc.poll() is not None:
            raise RuntimeError(
                f"server exited {proc.returncode}: "
                f"{proc.stderr.read().decode()[-500:]}"
            )
        time.sleep(0.05)
    proc.kill()
    raise TimeoutError("server never bound")


class TestServerDeath:
    def test_chaos_exit_after_submit_then_recovery(
        self, tmp_path, s27_bench
    ):
        """The server drops dead the instant a submission is durable --
        before the HTTP response goes out.  The client sees a dropped
        connection; the journal has the job; the restart runs it."""
        import http.client as http_client

        from repro.serve.client import ServeClient

        data_dir = tmp_path / "serve"
        proc, port = _spawn(
            data_dir, extra=("--chaos-exit-after-submits", "1")
        )
        try:
            client = ServeClient(port=port, timeout_s=10.0)
            with pytest.raises(
                (http_client.RemoteDisconnected, ConnectionError)
            ):
                client.submit(s27_bench, name="s27", config=SLOW)
            proc.wait(timeout=30.0)
            assert proc.returncode == SERVER_CHAOS_EXIT
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        proc, port = _spawn(data_dir)
        try:
            client = ServeClient(port=port, timeout_s=10.0)
            assert client.healthz()["recovered_jobs"] == 1
            jobs = client.jobs()
            assert len(jobs) == 1  # the unacknowledged submit survived
            job_id = jobs[0]["job_id"]
            final = client.wait(job_id, timeout_s=120.0)
            assert final["state"] == "done"
            assert client.result(job_id)["partial"] is False
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    def test_sigkill_mid_job_then_byte_identical_recovery(
        self, tmp_path, s27_bench, clean_result
    ):
        """SIGKILL -- no handler, no cleanup -- lands while Procedure 2
        is mid-flight; the restarted server resumes from the checkpoint
        journal and converges on the byte-identical clean result."""
        from repro.serve.client import ServeClient

        data_dir = tmp_path / "serve"
        proc, port = _spawn(data_dir)
        try:
            client = ServeClient(port=port, timeout_s=10.0)
            job = client.submit(
                s27_bench, name="s27", config=SLOW,
                chaos={"commit_delay_s": 0.5},
            )
            job_id = job["job_id"]
            # Wait until at least one iteration is durably committed.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                kinds = [e["kind"] for e in client.events(job_id)]
                if "iteration" in kinds:
                    break
                time.sleep(0.1)
            else:
                pytest.fail("no committed iteration before deadline")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        proc, port = _spawn(data_dir)
        try:
            client = ServeClient(port=port, timeout_s=10.0)
            assert client.healthz()["recovered_jobs"] >= 1
            final = client.wait(job_id, timeout_s=120.0)
            assert final["state"] == "done"
            got = client.result(job_id)["result"]
            assert json.dumps(got, sort_keys=True) == json.dumps(
                clean_result, sort_keys=True
            )
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
