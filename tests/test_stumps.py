"""Tests for the STUMPS parallel pattern generator."""

import pytest

from repro.rpg.stumps import (
    PhaseShifter,
    StumpsGenerator,
    phase_separation_check,
)


class TestPhaseShifter:
    def test_distinct_tap_sets(self):
        ps = PhaseShifter(width=32, channels=8, seed=3)
        taps = [tuple(t) for t in ps.taps]
        assert len(set(taps)) == 8

    def test_outputs_are_bits(self):
        ps = PhaseShifter(width=16, channels=4)
        bits = ps.outputs(0xBEEF)
        assert len(bits) == 4
        assert set(bits) <= {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseShifter(width=8, channels=0)
        with pytest.raises(ValueError):
            PhaseShifter(width=8, channels=2, taps_per_channel=9)

    def test_deterministic(self):
        a = PhaseShifter(width=32, channels=4, seed=9)
        b = PhaseShifter(width=32, channels=4, seed=9)
        assert a.taps == b.taps


class TestStumpsGenerator:
    def test_shift_cycle_advances(self):
        gen = StumpsGenerator(channels=3, seed=5)
        first = gen.shift_cycle()
        second = gen.shift_cycle()
        assert len(first) == 3
        # Streams evolve (states differ); equality possible per-cycle but
        # not for many consecutive cycles.
        rounds = [gen.shift_cycle() for _ in range(32)]
        assert len({tuple(r) for r in rounds}) > 1

    def test_load_chains_lengths(self):
        gen = StumpsGenerator(channels=3, seed=5)
        chains = gen.load_chains([4, 7, 2])
        assert [len(c) for c in chains] == [4, 7, 2]
        assert all(set(c) <= {0, 1} for c in chains)

    def test_load_chains_validation(self):
        gen = StumpsGenerator(channels=2)
        with pytest.raises(ValueError):
            gen.load_chains([3])

    def test_state_bits_flatten(self):
        gen = StumpsGenerator(channels=2, seed=5)
        flat = gen.state_bits([3, 4])
        assert len(flat) == 7

    def test_deterministic(self):
        a = StumpsGenerator(channels=4, seed=11).state_bits([5, 5, 5, 5])
        b = StumpsGenerator(channels=4, seed=11).state_bits([5, 5, 5, 5])
        assert a == b

    def test_phase_separation(self):
        """The reason the phase shifter exists: parallel channels must
        not be shifted copies of one another."""
        gen = StumpsGenerator(channels=8, seed=2, shifter_seed=4)
        assert phase_separation_check(gen, cycles=256) == 1.0

    def test_channels_differ(self):
        gen = StumpsGenerator(channels=4, seed=13)
        chains = gen.load_chains([16, 16, 16, 16])
        assert len({tuple(c) for c in chains}) == 4
