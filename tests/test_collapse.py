"""Tests for fault equivalence collapsing."""

import pytest

from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.faults.collapse import (
    collapse_faults,
    collapse_ratio,
    equivalence_classes,
)
from repro.faults.model import Fault, generate_faults


def find_class(classes, fault):
    for members in classes:
        if fault in members:
            return members
    raise AssertionError(f"{fault} not in any class")


class TestS27:
    def test_collapsed_count_is_canonical(self, s27):
        """The ISCAS-89 s27 collapses to 32 faults -- the number quoted
        throughout the literature.  A strong end-to-end check of both the
        netlist and the collapsing rules."""
        assert len(collapse_faults(s27)) == 32

    def test_ratio_below_one(self, s27):
        assert 0.5 < collapse_ratio(s27) < 0.7

    def test_classes_partition_universe(self, s27):
        universe = generate_faults(s27)
        classes = equivalence_classes(s27)
        flat = [f for members in classes for f in members]
        assert sorted(map(str, flat)) == sorted(map(str, universe))

    def test_representatives_unique_per_class(self, s27):
        collapsed = collapse_faults(s27)
        assert len(set(collapsed)) == len(collapsed)


class TestRules:
    def _single_gate(self, gtype, n_inputs=2):
        c = Circuit()
        names = [f"i{k}" for k in range(n_inputs)]
        for n in names:
            c.add_input(n)
        c.add_output("y")
        c.add_gate("y", gtype, names)
        return c

    def test_and_inputs_sa0_equivalent_to_output_sa0(self):
        c = self._single_gate(GateType.AND)
        classes = equivalence_classes(c)
        cls = find_class(classes, Fault(site="y", value=0))
        assert Fault(site="i0", value=0) in cls
        assert Fault(site="i1", value=0) in cls
        assert len(cls) == 3

    def test_nand_inputs_sa0_equivalent_to_output_sa1(self):
        c = self._single_gate(GateType.NAND)
        cls = find_class(equivalence_classes(c), Fault(site="y", value=1))
        assert Fault(site="i0", value=0) in cls

    def test_or_inputs_sa1_equivalent_to_output_sa1(self):
        c = self._single_gate(GateType.OR)
        cls = find_class(equivalence_classes(c), Fault(site="y", value=1))
        assert {Fault(site="i0", value=1), Fault(site="i1", value=1)} <= set(cls)

    def test_nor_rule(self):
        c = self._single_gate(GateType.NOR)
        cls = find_class(equivalence_classes(c), Fault(site="y", value=0))
        assert Fault(site="i0", value=1) in cls

    def test_xor_has_no_equivalences(self):
        c = self._single_gate(GateType.XOR)
        classes = equivalence_classes(c)
        assert all(len(m) == 1 for m in classes)

    def test_not_chain_collapses_fully(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("y")
        c.add_gate("t1", GateType.NOT, ["a"])
        c.add_gate("t2", GateType.NOT, ["t1"])
        c.add_gate("y", GateType.NOT, ["t2"])
        classes = equivalence_classes(c)
        # All four nets chain into two classes (one per polarity).
        assert sorted(len(m) for m in classes) == [4, 4]

    def test_branch_fault_not_equivalent_to_stem(self):
        """With fanout, the input-pin (branch) fault is its own line."""
        c = Circuit()
        c.add_input("a")
        c.add_input("b")
        c.add_output("y")
        c.add_output("z")
        c.add_gate("y", GateType.AND, ["a", "b"])
        c.add_gate("z", GateType.OR, ["a", "b"])
        classes = equivalence_classes(c)
        # a s-a-0 stem is NOT in the class of y s-a-0 (the branch is).
        cls_y0 = find_class(classes, Fault(site="y", value=0))
        assert Fault(site="a", value=0) not in cls_y0
        assert Fault(site="a", value=0, consumer="y", pin=0) in cls_y0

    def test_flop_boundary_not_collapsed(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("y")
        c.add_gate("d", GateType.NOT, ["a"])
        c.add_flop("q", "d")
        c.add_gate("y", GateType.BUF, ["q"])
        classes = equivalence_classes(c)
        cls_d = find_class(classes, Fault(site="d", value=0))
        assert Fault(site="q", value=0) not in cls_d

    def test_representative_prefers_stem(self, s27):
        for rep in collapse_faults(s27):
            # If the class has any stem fault, the representative is one.
            classes = equivalence_classes(s27)
            cls = find_class(classes, rep)
            if any(not f.is_branch for f in cls):
                assert not rep.is_branch
