"""Durability contract of the atomic-write helpers.

``os.replace`` makes a write atomic, but only a subsequent fsync of the
*parent directory* makes the new directory entry durable -- a crash
between the rename and the directory flush can roll the file back to
its previous version.  These tests pin both halves of the contract.
"""

import os
from pathlib import Path

from repro.robustness.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    fsync_dir,
)


class TestAtomicWrite:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"
        atomic_write_text(path, "replaced\n")
        assert path.read_text() == "replaced\n"

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"a": 1})
        import json

        assert json.loads(path.read_text()) == {"a": 1}

    def test_no_temp_litter(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failed_write_leaves_target_untouched(self, tmp_path, monkeypatch):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "original")

        def boom(src, dst):
            raise OSError("injected replace failure")

        monkeypatch.setattr(os, "replace", boom)
        try:
            atomic_write_bytes(path, b"new")
        except OSError:
            pass
        monkeypatch.undo()
        assert path.read_text() == "original"
        # ... and the failed attempt's temp file was cleaned up.
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


class TestDirectoryFsync:
    """The regression this file exists for: rename + parent-dir fsync."""

    def test_atomic_write_fsyncs_parent_directory(self, tmp_path, monkeypatch):
        fsynced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            try:
                # /proc is Linux-only but so is the CI fleet; fall back
                # to "unknown" elsewhere rather than failing the probe.
                target = os.readlink(f"/proc/self/fd/{fd}")
            except OSError:
                target = "unknown"
            fsynced.append(target)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        atomic_write_text(tmp_path / "out.txt", "data")
        # One fsync for the file's bytes, one for the directory entry.
        assert len(fsynced) >= 2
        assert any(t == str(tmp_path) for t in fsynced), (
            f"no directory fsync among {fsynced}"
        )

    def test_fsync_dir_on_directory(self, tmp_path):
        fsync_dir(tmp_path)  # must not raise

    def test_fsync_dir_missing_path_is_noop(self, tmp_path):
        fsync_dir(tmp_path / "does-not-exist")  # best-effort: no raise

    def test_fsync_dir_accepts_str(self, tmp_path):
        fsync_dir(str(tmp_path))
