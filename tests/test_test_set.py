"""Tests for TS0 generation and the BIST configuration."""

import pytest

from repro.core.config import BistConfig, D1_DECREASING, D1_INCREASING
from repro.core.test_set import draw_test, generate_ts0, total_vectors
from repro.rpg.prng import make_source


class TestBistConfig:
    def test_defaults_match_paper(self):
        cfg = BistConfig()
        assert (cfg.la, cfg.lb, cfg.n) == (8, 16, 64)
        assert cfg.d1_values == tuple(range(1, 11))

    def test_la_must_be_less_than_lb(self):
        with pytest.raises(ValueError):
            BistConfig(la=16, lb=16)
        with pytest.raises(ValueError):
            BistConfig(la=32, lb=16)

    def test_validation(self):
        with pytest.raises(ValueError):
            BistConfig(n=0)
        with pytest.raises(ValueError):
            BistConfig(d1_values=())
        with pytest.raises(ValueError):
            BistConfig(d1_values=(0,))
        with pytest.raises(ValueError):
            BistConfig(n_same_fc=0)
        with pytest.raises(ValueError):
            BistConfig(d2=0)

    def test_with_lengths(self):
        cfg = BistConfig(base_seed=7).with_lengths(16, 64, 128)
        assert (cfg.la, cfg.lb, cfg.n) == (16, 64, 128)
        assert cfg.base_seed == 7

    def test_effective_d2(self):
        assert BistConfig().effective_d2(21) == 22
        assert BistConfig(d2=5).effective_d2(21) == 5

    def test_seed_for_iteration_distinct(self):
        cfg = BistConfig()
        seeds = {cfg.seed_for_iteration(i) for i in range(100)}
        assert len(seeds) == 100

    def test_d1_orders(self):
        assert D1_INCREASING == tuple(range(1, 11))
        assert D1_DECREASING == tuple(range(10, 0, -1))


class TestGenerateTs0:
    def test_shape(self, s27):
        cfg = BistConfig(la=4, lb=9, n=5)
        ts0 = generate_ts0(s27, cfg)
        assert len(ts0) == 10
        assert all(t.length == 4 for t in ts0[:5])
        assert all(t.length == 9 for t in ts0[5:])
        assert all(len(t.si) == 3 for t in ts0)
        assert all(len(v) == 4 for t in ts0 for v in t.vectors)
        assert all(t.schedule is None for t in ts0)

    def test_deterministic(self, s27):
        cfg = BistConfig(la=4, lb=9, n=3, base_seed=99)
        a = generate_ts0(s27, cfg)
        b = generate_ts0(s27, cfg)
        assert [(t.si, t.vectors) for t in a] == [(t.si, t.vectors) for t in b]

    def test_seed_changes_tests(self, s27):
        a = generate_ts0(s27, BistConfig(la=4, lb=9, n=3, base_seed=1))
        b = generate_ts0(s27, BistConfig(la=4, lb=9, n=3, base_seed=2))
        assert [(t.si, t.vectors) for t in a] != [(t.si, t.vectors) for t in b]

    def test_lfsr_kind(self, s27):
        cfg = BistConfig(la=4, lb=9, n=3, rng_kind="lfsr")
        a = generate_ts0(s27, cfg)
        b = generate_ts0(s27, cfg)
        assert [(t.si, t.vectors) for t in a] == [(t.si, t.vectors) for t in b]

    def test_total_vectors(self, s27):
        cfg = BistConfig(la=4, lb=9, n=5)
        assert total_vectors(generate_ts0(s27, cfg)) == 5 * (4 + 9)

    def test_draw_test_order(self):
        """SI is drawn before the vectors, from one stream."""
        src_a = make_source(5)
        t = draw_test(src_a, n_sv=3, n_pi=2, length=2)
        src_b = make_source(5)
        expect_si = src_b.bits(3)
        expect_vec0 = src_b.bits(2)
        assert t.si == expect_si
        assert t.vectors[0] == expect_vec0
