"""Tests for VCD export."""

import pytest

from repro.simulation.compiled import CompiledModel
from repro.simulation.sequential import simulate_test
from repro.simulation.vcd import VcdWriter, trace_to_vcd, _identifier


class TestVcdWriter:
    def test_header_structure(self):
        w = VcdWriter("top")
        w.declare("a")
        w.set_time(0)
        w.change("a", 1)
        text = w.render()
        assert "$scope module top $end" in text
        assert "$var wire 1" in text
        assert "$enddefinitions $end" in text
        assert "#0" in text

    def test_duplicate_declare(self):
        w = VcdWriter()
        w.declare("a")
        with pytest.raises(ValueError):
            w.declare("a")

    def test_time_monotonic(self):
        w = VcdWriter()
        w.declare("a")
        w.set_time(3)
        with pytest.raises(ValueError):
            w.set_time(3)

    def test_change_requires_time(self):
        w = VcdWriter()
        w.declare("a")
        with pytest.raises(ValueError):
            w.change("a", 1)

    def test_redundant_changes_suppressed(self):
        w = VcdWriter()
        w.declare("a")
        w.set_time(0)
        w.change("a", 1)
        w.set_time(1)
        w.change("a", 1)  # no change
        text = w.render()
        assert text.count(f"1{w._ids['a']}") == 1

    def test_identifier_uniqueness(self):
        ids = {_identifier(i) for i in range(500)}
        assert len(ids) == 500


class TestTraceToVcd:
    def test_s27_trace(self, s27):
        model = CompiledModel(s27)
        schedule = [(0, ()), (0, ()), (2, (1, 0)), (0, ())]
        trace = simulate_test(
            model,
            [0, 0, 1],
            [[0, 1, 1, 1], [1, 0, 0, 1], [0, 1, 1, 1], [1, 0, 0, 1]],
            schedule=schedule,
        )
        text = trace_to_vcd(
            trace,
            pi_names=s27.inputs,
            po_names=s27.outputs,
            state_names=s27.state_vars,
        )
        # All signals declared.
        for name in s27.inputs + s27.outputs + s27.state_vars:
            assert f" {name} $end" in text
        # Timeline covers vectors + shift cycles + final.
        n_steps = trace.length + trace.total_shift_cycles + 1
        assert f"#{n_steps - 1}" in text
