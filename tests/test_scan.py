"""Tests for the functional scan model (including the limited shift)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.library import ALL_ONES
from repro.simulation.scan import (
    bit_to_word,
    full_scan_state,
    limited_shift,
    state_to_bits,
    state_to_string,
    word_to_bit,
)


def make_state(bits):
    return full_scan_state(len(bits), bits, n_words=1)


class TestBasics:
    def test_bit_word_round_trip(self):
        assert word_to_bit(bit_to_word(0)) == 0
        assert word_to_bit(bit_to_word(1)) == 1

    def test_word_to_bit_rejects_mixed(self):
        with pytest.raises(ValueError):
            word_to_bit(np.uint64(5))

    def test_full_scan_state_layout(self):
        state = make_state([1, 0, 1])
        assert state_to_bits(state) == [1, 0, 1]
        assert state_to_string(state) == "101"

    def test_full_scan_state_arity(self):
        with pytest.raises(ValueError):
            full_scan_state(3, [1, 0], 1)


class TestLimitedShift:
    def test_paper_example(self):
        """The paper's Section 2: 010 shifted by 1 with fill 0 -> 001."""
        state = make_state([0, 1, 0])
        new, out = limited_shift(state, 1, [0])
        assert state_to_string(new) == "001"
        assert [word_to_bit(w) for w in out[:, 0]] == [0]

    def test_shift_out_order(self):
        # 1101, shift 2: bits leave right end first: 1 then 0.
        state = make_state([1, 1, 0, 1])
        new, out = limited_shift(state, 2, [0, 0])
        assert [word_to_bit(w) for w in out[:, 0]] == [1, 0]
        assert state_to_string(new) == "0011"

    def test_fill_order(self):
        # First fill bit travels furthest right.
        state = make_state([0, 0, 0, 0])
        new, _ = limited_shift(state, 3, [1, 0, 0])
        # fills f0=1,f1=0,f2=0 end at positions 2,1,0.
        assert state_to_string(new) == "0010"

    def test_zero_shift_is_identity(self):
        state = make_state([1, 0, 1])
        new, out = limited_shift(state, 0, [])
        assert state_to_string(new) == "101"
        assert out.shape == (0, 1)

    def test_full_shift_replaces_state(self):
        state = make_state([1, 0, 1])
        new, out = limited_shift(state, 3, [0, 1, 1])
        # Complete scan: everything out (right-to-left), fills in.
        assert [word_to_bit(w) for w in out[:, 0]] == [1, 0, 1]
        assert state_to_string(new) == "110"

    def test_bounds(self):
        state = make_state([1, 0])
        with pytest.raises(ValueError):
            limited_shift(state, 3, [0, 0, 0])
        with pytest.raises(ValueError):
            limited_shift(state, 1, [])

    def test_does_not_mutate_input(self):
        state = make_state([1, 0, 1])
        limited_shift(state, 2, [0, 0])
        assert state_to_string(state) == "101"

    def test_multi_word_columns_shift_together(self):
        state = np.zeros((3, 2), dtype=np.uint64)
        state[0, 0] = ALL_ONES  # copy 0 has a 1 at the left end
        new, out = limited_shift(state, 1, [0])
        assert int(new[1, 0]) == int(ALL_ONES)
        assert int(new[1, 1]) == 0


@settings(max_examples=50, deadline=None)
@given(
    bits=st.lists(st.integers(0, 1), min_size=1, max_size=12),
    data=st.data(),
)
def test_shift_composition(bits, data):
    """shift(k1) then shift(k2) == shift(k1+k2) with concatenated fills."""
    n = len(bits)
    k1 = data.draw(st.integers(0, n))
    k2 = data.draw(st.integers(0, n - k1))
    fills = data.draw(st.lists(st.integers(0, 1), min_size=k1 + k2, max_size=k1 + k2))
    state = make_state(bits)

    s1, out1 = limited_shift(state, k1, fills[:k1])
    s2, out2 = limited_shift(s1, k2, fills[k1:])
    s_once, out_once = limited_shift(state, k1 + k2, fills)

    assert state_to_string(s2) == state_to_string(s_once)
    seq = [word_to_bit(w) for w in out1[:, 0]] + [word_to_bit(w) for w in out2[:, 0]]
    once = [word_to_bit(w) for w in out_once[:, 0]]
    assert seq == once


@settings(max_examples=30, deadline=None)
@given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=10))
def test_full_shift_scans_out_reversed_state(bits):
    """A complete scan operation reads the state right-to-left."""
    state = make_state(bits)
    _, out = limited_shift(state, len(bits), [0] * len(bits))
    assert [word_to_bit(w) for w in out[:, 0]] == bits[::-1]
