"""Tests for the clock-cycle cost model -- including exact agreement
with the paper's published numbers."""

import pytest

from repro.core.cost import ncyc0, ncyc0_scaled, ncyc_pair, nsh, total_cycles
from repro.faults.fault_sim import ScanTest


class TestNcyc0PaperValues:
    """Ncyc0 values transcribed from the paper's Tables 3, 4 and 5."""

    @pytest.mark.parametrize(
        "la,lb,n,expected",
        [
            (8, 16, 64, 2568),
            (8, 32, 64, 3592),
            (16, 32, 64, 4104),
            (8, 64, 64, 5640),
            (8, 128, 64, 9736),
            (8, 256, 64, 17928),
            (8, 16, 128, 5128),
            (16, 32, 128, 8200),
            (64, 128, 128, 26632),
            (8, 16, 256, 10248),
            (64, 256, 256, 86024),
        ],
    )
    def test_table3_s208(self, la, lb, n, expected):
        assert ncyc0(8, la, lb, n) == expected  # N_SV(s208) = 8

    @pytest.mark.parametrize(
        "la,lb,n,expected",
        [
            (8, 16, 64, 3600),
            (8, 32, 64, 4624),
            (16, 32, 64, 5136),
            (32, 64, 64, 8208),
            (64, 128, 64, 14352),
            (8, 16, 128, 7184),
            (64, 256, 128, 45072),
            (8, 16, 256, 14352),
            (64, 256, 256, 90128),
        ],
    )
    def test_table4_s420(self, la, lb, n, expected):
        assert ncyc0(16, la, lb, n) == expected  # N_SV(s420) = 16

    @pytest.mark.parametrize(
        "nsv,la,lb,n,expected",
        [
            (21, 8, 16, 64, 4245),
            (21, 16, 32, 128, 11541),
            (74, 8, 16, 64, 11082),
            (74, 64, 128, 64, 21834),
        ],
    )
    def test_table5_values(self, nsv, la, lb, n, expected):
        assert ncyc0(nsv, la, lb, n) == expected


class TestCostModel:
    def test_formula_structure(self):
        # (2N+1) * N_SV + N * (LA + LB)
        assert ncyc0(10, 4, 8, 3) == 7 * 10 + 3 * 12

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ncyc0(-1, 4, 8, 3)

    def test_nsh_sums_schedules(self):
        tests = [
            ScanTest(si=[0], vectors=[[0]], schedule=[(2, (0, 1))]),
            ScanTest(si=[0], vectors=[[0]], schedule=[(0, ())]),
            ScanTest(si=[0], vectors=[[0]]),
        ]
        assert nsh(tests) == 2

    def test_ncyc_pair(self):
        assert ncyc_pair(1000, 250) == 1250

    def test_total_cycles(self):
        # TS0 once + each pair pays Ncyc0 + its shifts.
        assert total_cycles(1000, [10, 20]) == 1000 + 1010 + 1020
        assert total_cycles(1000, []) == 1000

    def test_scaled_scan_clock(self):
        base = ncyc0(8, 8, 16, 64)
        assert ncyc0_scaled(8, 8, 16, 64, 1.0) == base
        # Slower scan clock inflates only the scan component.
        assert ncyc0_scaled(8, 8, 16, 64, 2.0) == base + (2 * 64 + 1) * 8
        with pytest.raises(ValueError):
            ncyc0_scaled(8, 8, 16, 64, 0)
