"""Tests for coverage-versus-cycles curves."""

import pytest

from repro.core.config import BistConfig
from repro.core.coverage_curve import (
    CoverageCurve,
    proposed_scheme_curve,
    single_vector_curve,
    write_curves_csv,
)
from repro.core.procedure2 import run_procedure2
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator


@pytest.fixture(scope="module")
def s27_setup():
    from repro.bench_circuits.s27 import s27_circuit

    circuit = s27_circuit()
    sim = FaultSimulator(circuit)
    faults = collapse_faults(circuit)
    cfg = BistConfig(la=4, lb=8, n=4)
    result = run_procedure2(circuit, cfg, faults, simulator=sim)
    return circuit, sim, faults, result


class TestCoverageCurve:
    def test_monotone_enforced(self):
        curve = CoverageCurve(label="x", num_targets=10)
        curve.add(100, 5)
        with pytest.raises(ValueError):
            curve.add(50, 6)

    def test_cycles_to_reach(self):
        curve = CoverageCurve(label="x", num_targets=10)
        curve.add(100, 5)
        curve.add(200, 10)
        assert curve.cycles_to_reach(0.5) == 100
        assert curve.cycles_to_reach(1.0) == 200
        curve2 = CoverageCurve(label="y", num_targets=10)
        curve2.add(100, 4)
        assert curve2.cycles_to_reach(0.9) is None

    def test_csv_format(self):
        curve = CoverageCurve(label="x", num_targets=4)
        curve.add(10, 2)
        csv = curve.as_csv()
        assert csv.startswith("cycles,detected,coverage")
        assert "10,2,0.5" in csv


class TestProposedCurve:
    def test_matches_procedure2_endpoints(self, s27_setup):
        circuit, sim, faults, result = s27_setup
        curve = proposed_scheme_curve(circuit, result, faults, simulator=sim)
        # One point for TS0 plus one per pair.
        assert len(curve.points) == 1 + result.app
        # First point = TS0 outcome, last = final outcome and total cycles.
        assert curve.points[0] == (result.ncyc0, result.ts0_detected)
        assert curve.points[-1] == (result.ncyc_total, result.det_total)

    def test_coverage_non_decreasing(self, s27_setup):
        circuit, sim, faults, result = s27_setup
        curve = proposed_scheme_curve(circuit, result, faults, simulator=sim)
        detections = [d for _, d in curve.points]
        assert detections == sorted(detections)


class TestSingleVectorCurve:
    def test_budget_respected(self, s27_setup):
        circuit, sim, faults, _ = s27_setup
        curve = single_vector_curve(
            circuit, faults, cycle_budget=2_000, simulator=sim
        )
        assert curve.points
        assert all(c <= 2_000 for c, _ in curve.points)

    def test_stops_at_full_coverage(self, s27_setup):
        circuit, sim, faults, _ = s27_setup
        curve = single_vector_curve(
            circuit, faults, cycle_budget=100_000, simulator=sim
        )
        assert curve.final_coverage == 1.0


class TestCsvWriter:
    def test_multi_curve_csv(self, tmp_path, s27_setup):
        circuit, sim, faults, result = s27_setup
        a = proposed_scheme_curve(circuit, result, faults, simulator=sim)
        b = single_vector_curve(
            circuit, faults, cycle_budget=2_000, simulator=sim
        )
        path = tmp_path / "curves.csv"
        write_curves_csv([a, b], path)
        text = path.read_text()
        assert "label,cycles,detected,coverage" in text
        assert "limited-scan" in text and "single-vector" in text
