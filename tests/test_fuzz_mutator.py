"""Grammar-aware mutator: determinism, mutation names, encoding flips."""

import numpy as np

from repro.bench_circuits.s27 import S27_BENCH
from repro.fuzz.mutator import MUTATIONS, mutate_bench


def rng_for(seed):
    return np.random.Generator(np.random.PCG64(seed))


BASE = "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nx = AND(a, b)\n"


class TestDeterminism:
    def test_same_seed_same_output(self):
        outs = {mutate_bench(S27_BENCH, rng_for(11))[0] for _ in range(3)}
        assert len(outs) == 1

    def test_applied_names_are_registered(self):
        known = {name for name, _w, _f in MUTATIONS} | {
            "bom", "crlf", "no-final-newline"
        }
        for seed in range(50):
            _, applied = mutate_bench(BASE, rng_for(seed), n_mutations=4)
            assert set(applied) <= known


class TestBehavior:
    def test_mutations_change_text(self):
        changed = sum(
            mutate_bench(S27_BENCH, rng_for(s))[0] != S27_BENCH
            for s in range(30)
        )
        assert changed >= 28  # whitespace/comment noise still changes bytes

    def test_zero_mutations_is_near_identity(self):
        out, applied = mutate_bench(BASE, rng_for(3), n_mutations=0)
        # Only the encoding coin flip may fire.
        assert [a for a in applied if a not in ("bom", "crlf", "no-final-newline")] == []

    def test_each_mutation_runs_without_error(self):
        """Every registered mutation must cope with a tiny input."""
        for name, _w, fn in MUTATIONS:
            lines = BASE.splitlines()
            fn(lines, rng_for(5))
            assert isinstance(lines, list), name

    def test_encoding_flips_reachable(self):
        seen = set()
        for seed in range(300):
            _, applied = mutate_bench(BASE, rng_for(seed), n_mutations=1)
            seen.update(
                a for a in applied if a in ("bom", "crlf", "no-final-newline")
            )
        assert seen == {"bom", "crlf", "no-final-newline"}

    def test_bom_prepends_feff(self):
        for seed in range(300):
            out, applied = mutate_bench(BASE, rng_for(seed), n_mutations=0)
            if "bom" in applied:
                assert out.startswith("\ufeff")
                return
        raise AssertionError("no BOM flip observed in 300 seeds")
