"""Triage: stable fingerprints, ddmin minimization, corpus round-trip."""

import pytest

from repro.fuzz.corpus import (
    CorpusFormatError,
    load_entry,
    render_entry,
    replay_entry,
    save_entry,
)
from repro.fuzz.triage import (
    CrashBucket,
    _ddmin,
    fingerprint_exception,
    fingerprint_violation,
    minimize_bench,
)


def boom():
    raise RuntimeError("kaboom 42")


class TestFingerprints:
    def test_same_crash_same_fingerprint(self):
        prints = set()
        for _ in range(2):
            try:
                boom()
            except RuntimeError as exc:
                prints.add(fingerprint_exception(exc))
        assert len(prints) == 1

    def test_different_types_differ(self):
        try:
            raise KeyError("x")
        except KeyError as exc:
            fp1 = fingerprint_exception(exc)
        try:
            raise RuntimeError("x")
        except RuntimeError as exc:
            fp2 = fingerprint_exception(exc)
        assert fp1 != fp2

    def test_violation_fingerprint_ignores_digits(self):
        a = fingerprint_violation("sim", "vector 3 disagrees at bit 7")
        b = fingerprint_violation("sim", "vector 91 disagrees at bit 0")
        assert a == b

    def test_violation_fingerprint_respects_oracle(self):
        assert fingerprint_violation("a", "m") != fingerprint_violation("b", "m")


class TestDdmin:
    def test_finds_single_culprit(self):
        items = [f"l{i}" for i in range(20)]
        result = _ddmin(items, lambda ls: "l13" in ls)
        assert result == ["l13"]

    def test_finds_pair(self):
        items = [f"l{i}" for i in range(16)]
        result = _ddmin(items, lambda ls: "l3" in ls and "l12" in ls)
        assert sorted(result) == ["l12", "l3"]


class TestMinimizeBench:
    def test_minimizes_to_failing_line(self):
        text = "\n".join(f"g{i} = AND(a, b)" for i in range(30))
        text += "\nBAD LINE\n"
        out = minimize_bench(text, lambda t: "BAD LINE" in t)
        assert out == "BAD LINE\n"

    def test_shrinks_gate_args(self):
        text = "x = AND(a, b, c, d, evil, e)\n"
        out = minimize_bench(text, lambda t: "evil" in t)
        assert out == "x = AND(evil)\n"

    def test_non_reproducing_input_returned_unchanged(self):
        text = "x = AND(a, b)\n"
        assert minimize_bench(text, lambda t: False) == text

    def test_budget_bounds_predicate_calls(self):
        calls = {"n": 0}

        def pred(t):
            calls["n"] += 1
            return "z" in t

        text = "\n".join(f"z{i} = AND(z, z)" for i in range(64)) + "\n"
        minimize_bench(text, pred, max_checks=10)
        # initial check + at most max_checks bounded ones
        assert calls["n"] <= 12


class TestCrashBucketRender:
    def test_render_mentions_fingerprint_and_count(self):
        b = CrashBucket(
            fingerprint="abc123def456", kind="crash", oracle="parse-contract",
            error_type="RuntimeError", message="kaboom\nmore",
            case_ids=[4, 9], seeds=[0, 0], minimized="x = NOT(a)\n",
        )
        out = b.render()
        assert "abc123def456" in out
        assert "x2" in out
        assert "kaboom" in out
        assert "minimized to 1 line(s)" in out


class TestCorpusFormat:
    def test_render_load_roundtrip(self, tmp_path):
        p = save_entry(
            tmp_path, "case", "a = NOT(a)\n", "reject", ("E008",),
            fingerprint="fff", oracle="parse-contract", found="seed=1 case=2",
        )
        entry = load_entry(p)
        assert entry.expect == "reject"
        assert entry.expect_codes == ("E008",)
        assert entry.fingerprint == "fff"
        assert entry.oracle == "parse-contract"
        assert entry.found == "seed=1 case=2"

    def test_missing_header_rejected(self, tmp_path):
        p = tmp_path / "bad.bench"
        p.write_text("x = NOT(a)\n")
        with pytest.raises(CorpusFormatError):
            load_entry(p)

    def test_reject_without_codes_rejected(self, tmp_path):
        p = tmp_path / "bad.bench"
        p.write_text("# fuzz-corpus v1\n# expect: reject\nx = NOT(a)\n")
        with pytest.raises(CorpusFormatError):
            load_entry(p)

    def test_bom_body_hoists_to_file_start(self):
        out = render_entry("\ufeffINPUT(a)\n", "pass")
        assert out.startswith("\ufeff# fuzz-corpus v1")
        assert out.count("\ufeff") == 1

    def test_replay_detects_wrong_expectation(self, tmp_path):
        p = save_entry(
            tmp_path, "wrong",
            "INPUT(a)\nOUTPUT(x)\nx = NOT(a)\n", "reject", ("E007",),
        )
        problem = replay_entry(load_entry(p))
        assert problem is not None
        assert "expected reject" in problem

    def test_replay_passes_correct_entry(self, tmp_path):
        p = save_entry(
            tmp_path, "right",
            "INPUT(a)\nOUTPUT(x)\nx = AND(a, ghost)\n", "reject", ("E007",),
        )
        assert replay_entry(load_entry(p)) is None
