"""Tests for (L_A, L_B, N) enumeration -- Table 5 is exact."""

import pytest

from repro.core.cost import ncyc0
from repro.core.parameter_selection import (
    LA_CHOICES,
    LB_CHOICES,
    N_CHOICES,
    enumerate_combinations,
    first_combinations,
)
from repro.experiments.table5 import PAPER_ROWS


class TestEnumeration:
    def test_la_strictly_less_than_lb(self):
        for combo in enumerate_combinations(8):
            assert combo.la < combo.lb

    def test_sorted_by_ncyc0(self):
        combos = enumerate_combinations(8)
        values = [c.ncyc0 for c in combos]
        assert values == sorted(values)

    def test_count(self):
        # pairs with la < lb over the paper's choice sets, times |N|.
        pairs = sum(
            1 for la in LA_CHOICES for lb in LB_CHOICES if la < lb
        )
        assert len(enumerate_combinations(8)) == pairs * len(N_CHOICES)

    def test_ncyc0_values_correct(self):
        for combo in enumerate_combinations(21)[:20]:
            assert combo.ncyc0 == ncyc0(21, combo.la, combo.lb, combo.n)

    def test_label(self):
        combo = enumerate_combinations(8)[0]
        assert combo.label() == f"{combo.la},{combo.lb},{combo.n}"


class TestTable5Exact:
    @pytest.mark.parametrize("n_sv", [21, 74])
    def test_first_ten_match_paper(self, n_sv):
        ours = [
            (c.la, c.lb, c.n, c.ncyc0) for c in first_combinations(n_sv, 10)
        ]
        assert tuple(ours) == PAPER_ROWS[n_sv]

    def test_first_k_is_prefix(self):
        all10 = first_combinations(21, 10)
        assert first_combinations(21, 5) == all10[:5]
