"""Tests for the compiled bit-parallel model, including an oracle check
against the scalar gate library."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.circuit.library import ALL_ONES, GateType, eval_gate_bits
from repro.circuit.levelize import levelize
from repro.circuit.netlist import Circuit
from repro.simulation.compiled import CompiledModel, Injections


def reference_eval(circuit: Circuit, input_bits, state_bits):
    """Slow scalar interpreter used as the oracle."""
    values = dict(zip(circuit.inputs, input_bits))
    values.update(zip(circuit.state_vars, state_bits))
    for gate in levelize(circuit).order:
        values[gate.output] = eval_gate_bits(
            gate.gtype, [values[s] for s in gate.inputs]
        )
    return values


class TestCompiledModel:
    def test_signal_indexing(self, s27):
        model = CompiledModel(s27)
        assert model.n_signals == 17
        assert len(model.pi_idx) == 4
        assert len(model.q_idx) == 3
        assert len(model.d_idx) == 3
        assert len(model.po_idx) == 1

    def test_eval_matches_reference_s27(self, s27):
        model = CompiledModel(s27)
        vals = model.alloc(1)
        for trial in range(16):
            pi = [(trial >> i) & 1 for i in range(4)]
            st_bits = [(trial >> i) & 1 for i in range(3)]
            model.set_inputs_from_bits(vals, pi)
            for i, q in enumerate(model.q_idx):
                vals[q, :] = ALL_ONES if st_bits[i] else np.uint64(0)
            model.eval(vals)
            ref = reference_eval(s27, pi, st_bits)
            for name, idx in model.signal_index.items():
                got = int(vals[idx, 0])
                assert got in (0, int(ALL_ONES)), name
                assert (got != 0) == bool(ref[name]), name

    def test_wide_gates_are_decomposed(self):
        c = Circuit()
        for n in "abcd":
            c.add_input(n)
        c.add_output("y")
        c.add_gate("y", GateType.AND, list("abcd"))
        model = CompiledModel(c)
        assert model.pin_map is not None
        assert model.n_signals > 5  # chain internals exist

    def test_set_inputs_wrong_arity(self, s27):
        model = CompiledModel(s27)
        vals = model.alloc(1)
        with pytest.raises(ValueError):
            model.set_inputs_from_bits(vals, [0, 1])

    def test_independent_bits(self, s27):
        """Different bits of a word are independent machine copies."""
        model = CompiledModel(s27)
        vals = model.alloc(1)
        # bit 0: all inputs 0; bit 1: all inputs 1.
        for i in model.pi_idx:
            vals[i, 0] = np.uint64(0b10)
        for q in model.q_idx:
            vals[q, 0] = np.uint64(0b10)
        model.eval(vals)
        ref0 = reference_eval(s27, [0] * 4, [0] * 3)
        ref1 = reference_eval(s27, [1] * 4, [1] * 3)
        for name, idx in model.signal_index.items():
            word = int(vals[idx, 0])
            assert (word & 1) == ref0[name], name
            assert ((word >> 1) & 1) == ref1[name], name


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=99_999),
    pattern=st.integers(min_value=0, max_value=2**16 - 1),
)
def test_compiled_matches_reference_on_random_circuits(seed, pattern):
    """Property: compiled evaluation == scalar oracle on random circuits."""
    circuit = synthesize(
        SyntheticSpec(name="r", n_pi=6, n_po=2, n_ff=4, n_gates=40, seed=seed)
    )
    model = CompiledModel(circuit)
    pi = [(pattern >> i) & 1 for i in range(6)]
    st_bits = [(pattern >> (6 + i)) & 1 for i in range(4)]
    vals = model.alloc(1)
    model.set_inputs_from_bits(vals, pi)
    for i, q in enumerate(model.q_idx):
        vals[q, :] = ALL_ONES if st_bits[i] else np.uint64(0)
    model.eval(vals)
    ref = reference_eval(circuit, pi, st_bits)
    for name in circuit.signals():
        idx = model.signal_index[name]
        assert (int(vals[idx, 0]) != 0) == bool(ref[name]), name


class TestInjections:
    def test_build_merges_same_location(self):
        inj = Injections.build(
            [(5, 0, 3, 1), (5, 0, 7, 0)], level_of_signal=[0] * 10
        )
        sigs, words, ands, ors = inj.per_level[0]
        assert len(sigs) == 1
        assert int(ors[0]) == 1 << 3
        assert int(ands[0]) == int(ALL_ONES) & ~((1 << 3) | (1 << 7))

    def test_apply_forces_bits(self):
        inj = Injections.build([(0, 0, 2, 1), (1, 0, 2, 0)], [0, 0])
        vals = np.zeros((2, 1), dtype=np.uint64)
        vals[1, 0] = ALL_ONES
        inj.apply(vals, 0)
        assert int(vals[0, 0]) == 0b100
        assert int(vals[1, 0]) == int(ALL_ONES) & ~0b100

    def test_apply_only_at_its_level(self):
        inj = Injections.build([(0, 0, 0, 1)], [3])
        vals = np.zeros((1, 1), dtype=np.uint64)
        inj.apply(vals, 0)
        assert int(vals[0, 0]) == 0
        inj.apply(vals, 3)
        assert int(vals[0, 0]) == 1

    def test_whole_word_injection(self):
        inj = Injections.build_whole_word([(0, 0, 1)], [0])
        vals = np.zeros((1, 1), dtype=np.uint64)
        inj.apply(vals, 0)
        assert int(vals[0, 0]) == int(ALL_ONES)

    def test_injection_during_eval(self, s27):
        model = CompiledModel(s27)
        sig = model.index_of("G17")
        inj = Injections.build_whole_word(
            [(sig, 0, 1)], model.level_of_signal
        )
        vals = model.alloc(1)
        model.set_inputs_from_bits(vals, [0, 0, 0, 0])
        model.eval(vals, injections=inj)
        assert int(vals[sig, 0]) == int(ALL_ONES)

    def test_max_level(self):
        inj = Injections.build([(0, 0, 0, 1), (1, 0, 0, 1)], [2, 5])
        assert inj.max_level == 5
        assert Injections().max_level == -1
