"""Smoke tests for the ablation experiment drivers (s27 scale)."""

import pytest

from repro.experiments import ablations
from repro.experiments.common import bist_for


class TestObservationAblation:
    def test_full_policy_dominates(self):
        rows = ablations.observation_ablation("s27")
        assert rows[0].label.startswith("po +")
        full = rows[0].detected
        assert all(r.detected <= full for r in rows[1:])
        assert all(r.num_targets == rows[0].num_targets for r in rows)

    def test_render(self):
        rows = ablations.observation_ablation("s27")
        text = ablations.render_rows(rows, "title")
        assert "title" in text and "detected" in text


class TestFullScanCost:
    def test_limited_cheaper(self):
        limited, widened = ablations.full_scan_cost("s27")
        assert widened.cycles > limited.cycles
        assert limited.num_targets == widened.num_targets


class TestReseedAndD2:
    def test_reseed_ablation_keys(self):
        out = ablations.reseed_ablation("s27")
        assert set(out) == {"reseed-per-test", "one-stream"}
        for res in out.values():
            assert res.num_targets == 32

    def test_d2_sweep_labels(self):
        out = ablations.d2_sweep("s27", d2_values=(2, None))
        assert set(out) == {"D2=2", "D2=N_SV+1"}


class TestPartialScan:
    def test_partial_scan_runs(self):
        res = ablations.partial_scan_experiment("s27", fraction=0.67)
        assert res.n_sv == 2
        assert 0 <= res.det_total <= res.num_targets


class TestNewExperiments:
    def test_compaction_summary(self):
        text = ablations.compaction_experiment("s27")
        assert "compaction:" in text

    def test_transition_summary(self):
        text = ablations.transition_fault_experiment("s27")
        assert "transition faults" in text
        assert "detect 0" in text  # single-vector always detects zero

    def test_misr_validation_no_aliasing(self):
        text = ablations.misr_validation("s27")
        assert "0 aliased" in text

    def test_run_length_report(self):
        text = ablations.run_length_report("s27")
        assert "D1=1" in text and "D1=10" in text

    def test_tat_reduction(self):
        text = ablations.tat_reduction_experiment("s27")
        assert "TAT" in text
        assert "coverage 32 -> 32" in text
