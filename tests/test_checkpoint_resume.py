"""Checkpoint/resume of Procedure 2: journal format and crash recovery.

The contract under test: a run interrupted at *any* point -- in-process
``KeyboardInterrupt``, ``SIGINT``, or an un-catchable ``SIGKILL`` of a
child process -- resumes from its journal to a result **byte-identical**
(via :mod:`repro.experiments.serialize`) to an uninterrupted run, at any
``n_jobs``.

The rig circuit (``mini208``) is chosen so the config forces eight real
iterations with thirteen selected pairs; s27 at the paper's defaults
finishes at TS0 and would never exercise the loop.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.core.config import BistConfig
from repro.core.procedure2 import resume_procedure2, run_procedure2
from repro.experiments.serialize import result_to_dict
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator
from repro.robustness.checkpoint import (
    CheckpointError,
    CheckpointMismatchError,
    CheckpointPolicy,
    CheckpointState,
    CheckpointWriter,
    JOURNAL_VERSION,
    fingerprint_faults,
    load_checkpoint,
)

pytestmark = pytest.mark.chaos

#: Forces 8 iterations / 13 pairs on mini208 (complete=False) -- a real
#: mid-run state space for interrupt/resume, still ~0.5 s serial.
RIG_CONFIG = BistConfig(la=2, lb=4, n=2, n_same_fc=2, max_iterations=8)


@pytest.fixture(scope="module")
def rig():
    circuit = synthesize(
        SyntheticSpec(name="mini208", n_pi=10, n_po=1, n_ff=8, n_gates=96,
                      seed=5)
    )
    faults = collapse_faults(circuit)
    clean = run_procedure2(circuit, RIG_CONFIG, faults)
    assert clean.iterations_run == 8 and len(clean.pairs) == 13
    return circuit, faults, json.dumps(result_to_dict(clean))


def blob(result) -> str:
    return json.dumps(result_to_dict(result))


class Interrupting:
    """Simulator wrapper that raises KeyboardInterrupt at one dispatch."""

    def __init__(self, base, at: int) -> None:
        self.base = base
        self.at = at
        self.calls = 0

    @property
    def chain_length(self) -> int:
        return self.base.chain_length

    def simulate_grouped(self, *args, **kwargs):
        if self.calls == self.at:
            raise KeyboardInterrupt
        self.calls += 1
        return self.base.simulate_grouped(*args, **kwargs)


class TestJournalFormat:
    def header(self, n=3):
        return {
            "kind": "header", "version": JOURNAL_VERSION, "circuit": "x",
            "config": {}, "n_sv": 4, "num_targets": n, "targets_sha256": "",
        }

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CheckpointWriter(CheckpointPolicy(path), self.header()) as w:
            w.write_ts0([[0, 1, 2, "po"]])
            w.commit_iteration(1, 0, [{"iteration": 1, "d1": 3,
                                       "newly_detected": 1, "nsh": 2,
                                       "ls_time_units": 5,
                                       "total_time_units": 9,
                                       "detected": [[1, 4, 0, "sv"]]}])
            w.commit_iteration(2, 1, [])
        state = load_checkpoint(path)
        assert state.header["n_sv"] == 4
        assert state.ts0["detected"] == [[0, 1, 2, "po"]]
        assert len(state.pairs) == 1 and state.pairs[0]["d1"] == 3
        assert state.cursor == (2, 1)
        assert state.final is None
        assert state.detected_rows == [[0, 1, 2, "po"], [1, 4, 0, "sv"]]

    def test_final_record(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CheckpointWriter(CheckpointPolicy(path), self.header()) as w:
            w.write_ts0([])
            w.write_final(complete=True, iterations_run=0)
        state = load_checkpoint(path)
        assert state.final == {"kind": "final", "complete": True,
                               "iterations_run": 0}

    def test_uncommitted_pair_is_discarded(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CheckpointWriter(CheckpointPolicy(path), self.header()) as w:
            w.write_ts0([])
            w.commit_iteration(1, 0, [{"iteration": 1, "detected": []}])
        # A pair line whose cursor never landed (crash mid-transaction).
        with open(path, "a") as fh:
            fh.write(json.dumps({"kind": "pair", "iteration": 2,
                                 "detected": []}) + "\n")
        state = load_checkpoint(path)
        assert len(state.pairs) == 1
        assert state.cursor == (1, 0)

    def test_torn_tail_is_discarded(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CheckpointWriter(CheckpointPolicy(path), self.header()) as w:
            w.commit_iteration(1, 0, [])
        with open(path, "a") as fh:
            fh.write('{"kind": "curs')  # SIGKILL mid-write
        state = load_checkpoint(path)
        assert state.cursor == (1, 0)

    def test_duplicated_transaction_is_replayed_once(self, tmp_path):
        """A committed iteration appended twice must not replay twice.

        The duplicate arises when a signal interrupts ``_flush_pending``
        after its bytes landed (e.g. inside fsync) and the interrupt
        path flushes again; old journals may carry it, so the reader
        skips any commit at or below the current cursor.
        """
        path = tmp_path / "j.jsonl"
        pair = {"iteration": 1, "d1": 3, "newly_detected": 1, "nsh": 2,
                "ls_time_units": 5, "total_time_units": 9,
                "detected": [[1, 4, 0, "po"]]}
        with CheckpointWriter(CheckpointPolicy(path), self.header()) as w:
            w.write_ts0([])
            w.commit_iteration(1, 0, [pair])
        block = (
            json.dumps(dict(pair, kind="pair"), sort_keys=True) + "\n"
            + json.dumps({"kind": "cursor", "iteration": 1,
                          "n_same_fc": 0}, sort_keys=True) + "\n"
        )
        with open(path, "a") as fh:
            fh.write(block)  # the re-flushed duplicate
        state = load_checkpoint(path)
        assert len(state.pairs) == 1
        assert state.cursor == (1, 0)

    def test_interrupted_flush_never_duplicates(self, tmp_path, monkeypatch):
        """KeyboardInterrupt inside the durable append, then ``close()``:
        the transaction must land at most once."""
        import repro.robustness.checkpoint as ckpt_mod

        path = tmp_path / "j.jsonl"
        writer = CheckpointWriter(CheckpointPolicy(path), self.header())
        real_fsync = os.fsync
        fired = []

        def exploding_fsync(fd):
            real_fsync(fd)  # the bytes are already durable
            if not fired:
                fired.append(True)
                raise KeyboardInterrupt

        monkeypatch.setattr(ckpt_mod.os, "fsync", exploding_fsync)
        with pytest.raises(KeyboardInterrupt):
            writer.commit_iteration(1, 0, [{"iteration": 1, "detected": []}])
        writer.close()  # the interrupt path: must not re-append
        state = load_checkpoint(path)
        assert len(state.pairs) == 1
        assert state.cursor == (1, 0)

    def test_missing_and_malformed(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "absent.jsonl")
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "cursor", "iteration": 1, "n_same_fc": 0}\n')
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            load_checkpoint(bad)

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "j.jsonl"
        header = self.header()
        header["version"] = JOURNAL_VERSION + 1
        CheckpointWriter(CheckpointPolicy(path), header).close()
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_policy_validates_every(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointPolicy(tmp_path / "j.jsonl", every=0)

    def test_every_batches_commits(self, tmp_path):
        path = tmp_path / "j.jsonl"
        writer = CheckpointWriter(
            CheckpointPolicy(path, every=3), self.header()
        )
        writer.commit_iteration(1, 0, [])
        writer.commit_iteration(2, 1, [])
        # Two iterations buffered, none on disk yet.
        assert load_checkpoint(path).cursor == (0, 0)
        writer.commit_iteration(3, 2, [])
        assert load_checkpoint(path).cursor == (3, 2)
        writer.commit_iteration(4, 0, [])
        writer.close()  # close flushes committed-but-buffered iterations
        assert load_checkpoint(path).cursor == (4, 0)


class TestMismatchDetection:
    def test_config_change_rejected(self, rig, tmp_path):
        circuit, faults, _ = rig
        path = tmp_path / "j.jsonl"
        config = BistConfig(la=2, lb=4, n=2, n_same_fc=2, max_iterations=2)
        run_procedure2(circuit, config, faults, checkpoint=str(path))
        other = BistConfig(la=3, lb=6, n=2, n_same_fc=2, max_iterations=2)
        with pytest.raises(CheckpointMismatchError, match="config differs"):
            resume_procedure2(circuit, other, faults, str(path))

    def test_execution_knobs_do_not_mismatch(self, rig, tmp_path):
        # n_jobs / shard_timeout / shard_retries are execution metadata:
        # changing them between run and resume is explicitly allowed.
        circuit, faults, _ = rig
        path = tmp_path / "j.jsonl"
        config = BistConfig(la=2, lb=4, n=2, n_same_fc=2, max_iterations=2)
        run_procedure2(circuit, config, faults, checkpoint=str(path))
        tweaked = BistConfig(la=2, lb=4, n=2, n_same_fc=2, max_iterations=2,
                             n_jobs=4, shard_timeout=9.0, shard_retries=0)
        resume_procedure2(circuit, tweaked, faults, str(path))

    def test_target_list_changes_rejected(self, rig, tmp_path):
        circuit, faults, _ = rig
        path = tmp_path / "j.jsonl"
        config = BistConfig(la=2, lb=4, n=2, n_same_fc=2, max_iterations=2)
        run_procedure2(circuit, config, faults, checkpoint=str(path))
        with pytest.raises(CheckpointMismatchError, match="target faults"):
            resume_procedure2(circuit, config, faults[:-1], str(path))
        reordered = list(reversed(faults))
        with pytest.raises(CheckpointMismatchError, match="fingerprint"):
            resume_procedure2(circuit, config, reordered, str(path))

    def test_fingerprint_is_order_sensitive(self, rig):
        _, faults, _ = rig
        assert fingerprint_faults(faults) != fingerprint_faults(
            list(reversed(faults))
        )


class TestResumeByteIdentity:
    def test_checkpointed_run_matches_clean(self, rig, tmp_path):
        circuit, faults, clean_blob = rig
        path = tmp_path / "j.jsonl"
        result = run_procedure2(circuit, RIG_CONFIG, faults,
                                checkpoint=str(path))
        assert blob(result) == clean_blob
        assert load_checkpoint(path).final is not None

    def test_resume_of_finished_journal_skips_simulation(self, rig, tmp_path):
        circuit, faults, clean_blob = rig
        path = tmp_path / "j.jsonl"
        run_procedure2(circuit, RIG_CONFIG, faults, checkpoint=str(path))
        # A finished journal is replayed without touching the simulator:
        # an unusable sentinel proves no simulation call is made.
        resumed = resume_procedure2(
            circuit, RIG_CONFIG, faults, str(path), simulator=object()
        )
        assert blob(resumed) == clean_blob

    @pytest.mark.parametrize("at", [0, 15, 40])
    def test_interrupt_anywhere_resumes_identically(self, rig, tmp_path, at):
        circuit, faults, clean_blob = rig
        path = tmp_path / f"j{at}.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_procedure2(
                circuit, RIG_CONFIG, faults,
                simulator=Interrupting(FaultSimulator(circuit), at),
                checkpoint=str(path),
            )
        resumed = resume_procedure2(circuit, RIG_CONFIG, faults, str(path))
        assert blob(resumed) == clean_blob

    def test_parallel_interrupt_parallel_resume(self, rig, tmp_path):
        circuit, faults, clean_blob = rig
        path = tmp_path / "j.jsonl"
        base = FaultSimulator(circuit).sharded(4)
        try:
            with pytest.raises(KeyboardInterrupt):
                run_procedure2(
                    circuit, RIG_CONFIG, faults,
                    simulator=Interrupting(base, 9), checkpoint=str(path),
                )
        finally:
            base.close()
        resumed = resume_procedure2(
            circuit, RIG_CONFIG, faults, str(path), n_jobs=4
        )
        assert blob(resumed) == clean_blob

    def test_double_resume_is_stable(self, rig, tmp_path):
        circuit, faults, clean_blob = rig
        path = tmp_path / "j.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_procedure2(
                circuit, RIG_CONFIG, faults,
                simulator=Interrupting(FaultSimulator(circuit), 20),
                checkpoint=str(path),
            )
        first = resume_procedure2(circuit, RIG_CONFIG, faults, str(path))
        again = resume_procedure2(
            circuit, RIG_CONFIG, faults, str(path), simulator=object()
        )
        assert blob(first) == blob(again) == clean_blob


#: Child process used by the signal tests: runs the rig checkpointed,
#: with every simulation call slowed so the parent can reliably land a
#: signal mid-run.  argv: <src-dir> <journal> <n_jobs> <sleep-seconds>.
CHILD_SCRIPT = """\
import sys, time

src, journal, n_jobs, sleep = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), float(sys.argv[4])
)
sys.path.insert(0, src)

from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.core.config import BistConfig
from repro.core.procedure2 import run_procedure2
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator

circuit = synthesize(SyntheticSpec(
    name="mini208", n_pi=10, n_po=1, n_ff=8, n_gates=96, seed=5))
config = BistConfig(la=2, lb=4, n=2, n_same_fc=2, max_iterations=8)
faults = collapse_faults(circuit)


class SlowSim:
    def __init__(self, base):
        self.base = base

    @property
    def chain_length(self):
        return self.base.chain_length

    def simulate_grouped(self, *args, **kwargs):
        time.sleep(sleep)
        return self.base.simulate_grouped(*args, **kwargs)


base = FaultSimulator(circuit)
if n_jobs > 1:
    base = base.sharded(n_jobs)
run_procedure2(circuit, config, faults,
               simulator=SlowSim(base), checkpoint=journal)
print("DONE", flush=True)
"""


@pytest.mark.slow
class TestSignalResume:
    def _interrupt_child(self, tmp_path, n_jobs, sig, cursors=2):
        """Start the rig in a child, signal it mid-run, return journal."""
        journal = tmp_path / "journal.jsonl"
        script = tmp_path / "child.py"
        script.write_text(CHILD_SCRIPT)
        src = str(Path(repro.__file__).resolve().parents[1])
        proc = subprocess.Popen(
            [sys.executable, str(script), src, str(journal),
             str(n_jobs), "0.08"],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.perf_counter() + 120.0
            while time.perf_counter() < deadline:
                if proc.poll() is not None:
                    break
                if (
                    journal.exists()
                    and journal.read_text().count('"kind": "cursor"')
                    >= cursors
                ):
                    break
                time.sleep(0.02)
            assert proc.poll() is None, (
                "child finished (or died) before it could be interrupted"
            )
            os.kill(proc.pid, sig)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        return journal

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_sigkill_then_resume(self, rig, tmp_path, n_jobs):
        circuit, faults, clean_blob = rig
        journal = self._interrupt_child(tmp_path, n_jobs, signal.SIGKILL)
        state = load_checkpoint(journal)
        assert state.final is None, "journal already finished; no crash?"
        assert state.cursor[0] >= 1
        resumed = resume_procedure2(circuit, RIG_CONFIG, faults,
                                    str(journal))
        assert blob(resumed) == clean_blob

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_sigint_then_resume(self, rig, tmp_path, n_jobs):
        circuit, faults, clean_blob = rig
        journal = self._interrupt_child(tmp_path, n_jobs, signal.SIGINT)
        state = load_checkpoint(journal)
        assert state.final is None
        resumed = resume_procedure2(circuit, RIG_CONFIG, faults,
                                    str(journal))
        assert blob(resumed) == clean_blob
