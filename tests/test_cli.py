"""Tests for the command-line interface."""

import pytest

from repro.cli import main, resolve_circuit


class TestResolve:
    def test_catalog_name(self):
        assert resolve_circuit("s27").name == "s27"

    def test_bench_file(self, tmp_path, s27):
        from repro.circuit.bench_parser import write_bench_file

        path = tmp_path / "c.bench"
        write_bench_file(s27, path)
        assert resolve_circuit(str(path)).num_gates == 10

    def test_verilog_file(self, tmp_path, s27):
        from repro.circuit.verilog import write_verilog_file

        path = tmp_path / "c.v"
        write_verilog_file(s27, path)
        assert resolve_circuit(str(path)).num_gates == 10

    def test_unknown(self):
        with pytest.raises(KeyError):
            resolve_circuit("nonexistent")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "s27" in out and "synthetic" in out

    def test_stats(self, capsys):
        assert main(["stats", "s27"]) == 0
        assert "pi=4" in capsys.readouterr().out

    def test_stats_with_testability(self, capsys):
        assert main(["stats", "s27", "--testability"]) == 0
        assert "SCOAP" in capsys.readouterr().out

    def test_faults(self, capsys):
        assert main(["faults", "s27"]) == 0
        out = capsys.readouterr().out
        assert "collapsed: 32" in out

    def test_lint_clean_circuit(self, capsys):
        assert main(["lint", "s27"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_lint_json(self, capsys):
        import json

        assert main(["lint", "s27", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["circuit"] == "s27" and data["errors"] == 0

    def test_lint_broken_bench_file(self, tmp_path, capsys):
        path = tmp_path / "broken.bench"
        path.write_text(
            "INPUT(a)\nOUTPUT(x)\nx = AND(a, ghost)\n"
        )
        assert main(["lint", str(path)]) == 1
        assert "ghost" in capsys.readouterr().out

    def test_lint_strict_fails_on_warnings(self, tmp_path, capsys):
        path = tmp_path / "dangles.bench"
        path.write_text(
            "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nunused = BUFF(a)\n"
        )
        assert main(["lint", str(path)]) == 0
        assert main(["lint", str(path), "--strict"]) == 1
        # T005 fires too: the dangling net's faults have p_detect = 0.
        assert main(["lint", str(path), "--strict",
                     "--suppress", "S006,T002,T005"]) == 0

    def test_lint_without_target(self, capsys):
        assert main(["lint"]) == 2

    def test_lint_tier_requires_all(self, capsys):
        assert main(["lint", "s27", "--tier", "small"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_lint_all_tier_restricts_sweep(self, capsys):
        assert main(["lint", "--all", "--tier", "small"]) == 0
        out = capsys.readouterr().out
        assert "s27" in out
        assert "s38584" not in out  # large tier excluded

    def test_analyze_text(self, capsys):
        assert main(["analyze", "s27"]) == 0
        out = capsys.readouterr().out
        assert "collapsed faults: 32" in out
        assert "RPR" in out

    def test_analyze_json_schema(self, capsys):
        import json

        assert main(["analyze", "s208", "--json", "--top", "3"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == 1
        assert data["circuit"] == "s208"
        assert len(data["fingerprint"]) == 64
        assert data["faults"]["rpr"] > 0
        assert len(data["top_rpr_faults"]) == 3
        assert all(
            entry["p"] < data["rpr_threshold"]
            for entry in data["top_rpr_faults"]
        )

    def test_analyze_threshold(self, capsys):
        import json

        # Threshold 0 keeps only exactly-untestable faults in RPR.
        assert main(["analyze", "s27", "--json", "--threshold", "1e-9"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["rpr_threshold"] == 1e-9
        assert data["faults"]["rpr"] == 0

    def test_analyze_uses_cache(self, tmp_path, capsys):
        import json

        argv = ["analyze", "s27", "--json", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["cache_hit"] is False
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["cache_hit"] is True
        # The cache only changes the flag, never the analysis.
        cold.pop("cache_hit"), warm.pop("cache_hit")
        assert cold == warm

    def test_analyze_unparseable_file(self, tmp_path, capsys):
        path = tmp_path / "broken.bench"
        path.write_text("INPUT(a)\nOUTPUT(x)\nx = AND(a, ghost)\n")
        assert main(["analyze", str(path)]) == 1

    def test_run_candidate_bias_flag(self, capsys):
        argv = ["run", "s27", "--la", "4", "--lb", "8", "--n", "8"]
        assert main(argv + ["--candidate-bias", "testability"]) == 0
        assert "complete" in capsys.readouterr().out

    def test_run(self, capsys):
        code = main(["run", "s27", "--la", "4", "--lb", "8", "--n", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "complete" in out

    def test_run_checkpoint_and_resume(self, tmp_path, capsys):
        journal = tmp_path / "s27.journal"
        argv = ["run", "s27", "--la", "4", "--lb", "8", "--n", "8",
                "--checkpoint", str(journal)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert journal.exists()
        # Resuming a finished journal replays it to identical output.
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_run_resume_requires_checkpoint(self, capsys):
        code = main(["run", "s27", "--resume"])
        assert code == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_first_complete(self, capsys):
        code = main(["first-complete", "s27", "--max-combos", "4"])
        assert code == 0
        assert "s27" in capsys.readouterr().out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        assert "N_SV = 21" in capsys.readouterr().out

    def test_table_unknown(self, capsys):
        assert main(["table", "99"]) == 2

    def test_convert_to_verilog_and_back(self, tmp_path, capsys):
        v_path = tmp_path / "s27.v"
        b_path = tmp_path / "s27.bench"
        assert main(["convert", "s27", str(v_path)]) == 0
        assert main(["convert", str(v_path), str(b_path)]) == 0
        from repro.circuit.bench_parser import parse_bench_file

        assert parse_bench_file(b_path).num_gates == 10

    def test_convert_unknown_format(self, tmp_path, capsys):
        assert main(["convert", "s27", str(tmp_path / "x.json")]) == 2


class TestFuzzCommand:
    def test_fuzz_smoke(self, capsys):
        code = main([
            "fuzz", "--budget", "10", "--seed", "0", "--no-sandbox",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "seed=0 budget=10" in out
        assert "no unique failures" in out

    def test_fuzz_deterministic_output(self, capsys):
        main(["fuzz", "--budget", "8", "--seed", "3", "--no-sandbox"])
        first = capsys.readouterr().out
        main(["fuzz", "--budget", "8", "--seed", "3", "--no-sandbox"])
        assert capsys.readouterr().out == first

    def test_fuzz_json(self, capsys):
        import json

        code = main([
            "fuzz", "--budget", "5", "--seed", "1", "--no-sandbox", "--json",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["seed"] == 1
        assert sum(report["counts"].values()) == 5

    def test_fuzz_replay_corpus(self, capsys):
        from pathlib import Path

        corpus = Path(__file__).parent / "corpus"
        assert main(["fuzz", "--replay", str(corpus)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_fuzz_replay_missing_dir(self, tmp_path, capsys):
        assert main(["fuzz", "--replay", str(tmp_path)]) == 2


class TestIngestionErrors:
    def test_unparseable_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.bench"
        bad.write_text("INPUT(a)\nOUTPUT(x)\nx = FROB(a)\n")
        assert main(["stats", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "E002" in err

    def test_unknown_benchmark_exits_2(self, capsys):
        assert main(["stats", "no-such-circuit"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_error_lists_every_issue(self, tmp_path, capsys):
        bad = tmp_path / "multi.bench"
        bad.write_text(
            "INPUT(a)\nINPUT(a)\nOUTPUT(x)\nx = FROB(ghost)\nx = NOT(a)\n"
        )
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "E002" in out and "E004" in out
