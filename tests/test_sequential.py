"""Tests for fault-free sequential simulation and traces."""

import pytest

from repro.simulation.compiled import CompiledModel, Injections
from repro.simulation.sequential import simulate_test, simulate_state_sequence
from repro.faults.model import FaultGraph
from repro.faults.collapse import collapse_faults

S27_SI = [0, 0, 1]
S27_T = [[0, 1, 1, 1], [1, 0, 0, 1], [0, 1, 1, 1], [1, 0, 0, 1], [0, 1, 0, 0]]


class TestSimulateTest:
    def test_s27_reference_trace(self, s27):
        """Golden trace (validated against an independent hand simulation
        of the s27 netlist with our bit orderings)."""
        model = CompiledModel(s27)
        trace = simulate_test(model, S27_SI, S27_T)
        assert trace.states == ["001", "001", "101", "001", "101", "001"]
        assert trace.outputs == ["1", "1", "1", "1", "1"]

    def test_state_sequence_helper(self, s27):
        model = CompiledModel(s27)
        assert simulate_state_sequence(model, S27_SI, S27_T) == [
            "001", "001", "101", "001", "101", "001",
        ]

    def test_trace_shapes(self, s27):
        model = CompiledModel(s27)
        trace = simulate_test(model, S27_SI, S27_T)
        assert trace.length == 5
        assert len(trace.states) == 6
        assert len(trace.outputs) == 5
        assert trace.shifts == [0] * 5
        assert trace.total_shift_cycles == 0

    def test_schedule_changes_states(self, s27):
        model = CompiledModel(s27)
        schedule = [(0, ()), (0, ()), (0, ()), (1, (0,)), (0, ())]
        plain = simulate_test(model, S27_SI, S27_T)
        shifted = simulate_test(model, S27_SI, S27_T, schedule=schedule)
        # Identical up to the shift point...
        assert shifted.states[:3] == plain.states[:3]
        # ...then the state is the plain state shifted right by 1, fill 0.
        pre = plain.states[3]
        assert shifted.states[3] == "0" + pre[:-1]
        assert shifted.shifts[3] == 1
        assert shifted.scanout[3] == [int(pre[-1])]
        assert shifted.total_shift_cycles == 1

    def test_si_arity_checked(self, s27):
        model = CompiledModel(s27)
        with pytest.raises(ValueError):
            simulate_test(model, [0, 1], S27_T)

    def test_schedule_length_checked(self, s27):
        model = CompiledModel(s27)
        with pytest.raises(ValueError):
            simulate_test(model, S27_SI, S27_T, schedule=[(0, ())])

    def test_injected_fault_changes_trace(self, s27):
        graph = FaultGraph(s27)
        faults = collapse_faults(s27)
        # Find a fault whose injection visibly changes something.
        changed = 0
        plain = simulate_test(graph.model, S27_SI, S27_T)
        for fault in faults:
            inj = Injections.build_whole_word(
                [(graph.signal_of(fault), 0, fault.value)],
                graph.model.level_of_signal,
            )
            t = simulate_test(graph.model, S27_SI, S27_T, injections=inj)
            if t.outputs != plain.outputs or t.states != plain.states:
                changed += 1
        assert changed > 10  # most faults perturb this 5-vector test


class TestTraceRendering:
    def test_table1_rows(self, s27):
        model = CompiledModel(s27)
        trace = simulate_test(model, S27_SI, S27_T)
        rows = trace.table1_rows()
        assert len(rows) == 6  # 5 vectors + final state row
        assert "0111" in rows[0]

    def test_timing_rows_no_shift(self, s27):
        model = CompiledModel(s27)
        trace = simulate_test(model, S27_SI, S27_T)
        rows = trace.timing_rows()
        assert len(rows) == 6  # L vector rows + final
        assert all(r.kind != "shift" for r in rows)
        assert [r.cycle for r in rows] == list(range(6))

    def test_timing_rows_with_shift(self, s27):
        model = CompiledModel(s27)
        schedule = [(0, ()), (0, ()), (0, ()), (2, (0, 1)), (0, ())]
        trace = simulate_test(model, S27_SI, S27_T, schedule=schedule)
        rows = trace.timing_rows()
        # 5 vectors + 2 shift cycles + final = 8 rows, cycles contiguous.
        assert len(rows) == 8
        assert [r.cycle for r in rows] == list(range(8))
        shift_rows = [r for r in rows if r.kind == "shift"]
        assert len(shift_rows) == 2
        assert all(r.vector is None for r in shift_rows)
        assert all(r.scanned_out in (0, 1) for r in shift_rows)
        # The vector of time unit 3 is delayed by 2 cycles (paper Table 2).
        vec_rows = [r for r in rows if r.kind == "vector"]
        assert vec_rows[3].cycle == 5

    def test_render_contains_header(self, s27):
        model = CompiledModel(s27)
        trace = simulate_test(model, S27_SI, S27_T)
        text = trace.render(title="demo")
        assert "demo" in text
        assert "shift(u)" in text
