"""Tests for the Circuit netlist container."""

import pytest

from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit, Flop, Gate


class TestConstruction:
    def test_basic_counts(self, s27):
        assert s27.num_inputs == 4
        assert s27.num_outputs == 1
        assert s27.num_state_vars == 3
        assert s27.num_gates == 10

    def test_duplicate_driver_gate(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("x", GateType.NOT, ["a"])
        with pytest.raises(ValueError, match="already has a driver"):
            c.add_gate("x", GateType.BUF, ["a"])

    def test_duplicate_driver_input(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(ValueError):
            c.add_input("a")

    def test_duplicate_driver_flop(self):
        c = Circuit()
        c.add_input("a")
        c.add_flop("q", "a")
        with pytest.raises(ValueError):
            c.add_flop("q", "a")

    def test_duplicate_output_declaration(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("a")
        with pytest.raises(ValueError):
            c.add_output("a")

    def test_gate_arity_enforced(self):
        with pytest.raises(ValueError):
            Gate(output="x", gtype=GateType.AND, inputs=("a",))
        with pytest.raises(ValueError):
            Gate(output="x", gtype=GateType.NOT, inputs=("a", "b"))


class TestAccessors:
    def test_state_vars_in_scan_order(self, s27):
        assert s27.state_vars == ["G5", "G6", "G7"]
        assert s27.next_state_nets == ["G10", "G11", "G13"]

    def test_gate_for(self, s27):
        gate = s27.gate_for("G8")
        assert gate.gtype is GateType.AND
        assert gate.inputs == ("G14", "G6")
        assert s27.gate_for("G0") is None
        assert s27.gate_for("G5") is None

    def test_flop_for(self, s27):
        assert s27.flop_for("G5") == Flop(q="G5", d="G10")
        assert s27.flop_for("G8") is None

    def test_signals_cover_everything(self, s27):
        sigs = set(s27.signals())
        assert {"G0", "G5", "G8", "G17"} <= sigs
        assert len(sigs) == 4 + 3 + 10

    def test_is_predicates(self, s27):
        assert s27.is_input("G0")
        assert not s27.is_input("G8")
        assert s27.is_state_var("G6")
        assert not s27.is_state_var("G0")


class TestFanoutMap:
    def test_fanout_of_stem(self, s27):
        fan = s27.fanout_map()
        # G11 feeds G17, G10, and flop G6.
        readers = {c for c, _ in fan["G11"]}
        assert readers == {"G17", "G10", "G6"}

    def test_flop_d_is_consumer(self, mux_circuit):
        fan = mux_circuit.fanout_map()
        assert ("q0", 0) in fan["out"]


class TestCopyAndReorder:
    def test_copy_is_independent(self, s27):
        c2 = s27.copy("s27b")
        c2.add_input("extra")
        assert "extra" not in s27.inputs
        assert c2.name == "s27b"

    def test_reorder_scan_chain(self, s27):
        c2 = s27.reorder_scan_chain(["G7", "G5", "G6"])
        assert c2.state_vars == ["G7", "G5", "G6"]
        assert s27.state_vars == ["G5", "G6", "G7"]  # original untouched

    def test_reorder_requires_permutation(self, s27):
        with pytest.raises(ValueError):
            s27.reorder_scan_chain(["G5", "G6"])
        with pytest.raises(ValueError):
            s27.reorder_scan_chain(["G5", "G6", "G8"])
