"""Tests for (I, D1) pair compaction."""

import pytest

from repro.core.compaction import compact_pairs, pair_detection_sets
from repro.core.config import BistConfig
from repro.core.procedure2 import run_procedure2
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator


@pytest.fixture(scope="module")
def s208_run():
    from repro.bench_circuits import load_circuit
    from repro.atpg.classify import classify_faults

    circuit = load_circuit("s208")
    sim = FaultSimulator(circuit)
    targets = classify_faults(circuit).target_faults
    cfg = BistConfig(la=4, lb=8, n=16)  # small TS0 -> many pairs
    result = run_procedure2(circuit, cfg, targets, simulator=sim)
    return circuit, sim, targets, result


@pytest.mark.slow
class TestCompaction:
    def test_preserves_coverage(self, s208_run):
        circuit, sim, targets, result = s208_run
        comp = compact_pairs(circuit, result, targets, simulator=sim)
        assert comp.coverage_after == comp.coverage_before

    def test_never_more_pairs(self, s208_run):
        circuit, sim, targets, result = s208_run
        comp = compact_pairs(circuit, result, targets, simulator=sim)
        assert comp.pairs_after <= comp.pairs_before
        assert comp.pairs_before == result.app

    def test_cycles_never_increase(self, s208_run):
        circuit, sim, targets, result = s208_run
        comp = compact_pairs(circuit, result, targets, simulator=sim)
        assert comp.cycles_after <= comp.cycles_before

    def test_kept_pairs_in_original_order(self, s208_run):
        circuit, sim, targets, result = s208_run
        comp = compact_pairs(circuit, result, targets, simulator=sim)
        keys = [(p.iteration, p.d1) for p in result.pairs]
        kept_keys = [(p.iteration, p.d1) for p in comp.kept]
        assert kept_keys == [k for k in keys if k in set(kept_keys)]

    def test_detection_sets_cover_pair_contributions(self, s208_run):
        """Each pair's full (no-drop) detection set contains at least its
        incremental contribution from Procedure 2."""
        circuit, sim, targets, result = s208_run
        sets = pair_detection_sets(
            circuit, result.config, result.pairs, targets, simulator=sim
        )
        for pair in result.pairs:
            assert len(sets[(pair.iteration, pair.d1)]) >= pair.newly_detected

    def test_summary(self, s208_run):
        circuit, sim, targets, result = s208_run
        comp = compact_pairs(circuit, result, targets, simulator=sim)
        assert "compaction:" in comp.summary()

    def test_empty_pairs_noop(self, s208_run):
        circuit, sim, targets, _ = s208_run
        cfg = BistConfig(la=8, lb=128, n=64)
        rich = run_procedure2(circuit, cfg, targets, simulator=sim)
        comp = compact_pairs(circuit, rich, targets, simulator=sim)
        assert comp.pairs_after == rich.app or comp.pairs_after < rich.app
