"""Tests for the deterministic ATPG flow."""

import pytest

from repro.atpg.test_generation import generate_deterministic_tests
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator


@pytest.fixture(scope="module")
def s27_set():
    from repro.bench_circuits.s27 import s27_circuit

    circuit = s27_circuit()
    return circuit, generate_deterministic_tests(circuit)


class TestGeneration:
    def test_full_coverage_on_s27(self, s27_set):
        circuit, det = s27_set
        assert len(det.covered) == 32
        assert not det.undetectable
        assert not det.aborted
        assert det.coverage() == 1.0

    def test_tests_are_single_vector(self, s27_set):
        _, det = s27_set
        assert all(t.length == 1 for t in det.tests)
        assert all(t.schedule is None for t in det.tests)

    def test_claimed_coverage_is_real(self, s27_set):
        """Fault-simulating the generated set detects every covered fault."""
        circuit, det = s27_set
        sim = FaultSimulator(circuit)
        hits = sim.simulate_grouped(det.tests, det.covered)
        assert set(hits) == set(det.covered)

    def test_compaction_helps(self):
        from repro.bench_circuits.s27 import s27_circuit

        circuit = s27_circuit()
        loose = generate_deterministic_tests(circuit, compact=False)
        tight = generate_deterministic_tests(circuit, compact=True)
        assert tight.size <= loose.size
        assert len(tight.covered) == len(loose.covered)

    def test_redundant_faults_classified(self):
        from repro.circuit.library import GateType
        from repro.circuit.netlist import Circuit

        c = Circuit("red")
        c.add_input("a")
        c.add_input("b")
        c.add_output("z")
        c.add_gate("t", GateType.AND, ["a", "b"])
        c.add_gate("z", GateType.OR, ["a", "t"])
        det = generate_deterministic_tests(c)
        assert det.undetectable  # t s-a-0 lives here
        assert det.coverage() == 1.0  # of the detectable ones

    def test_cycles_formula(self, s27_set):
        _, det = s27_set
        assert det.full_scan_cycles(3) == (det.size + 1) * 3 + det.size

    def test_deterministic(self):
        from repro.bench_circuits.s27 import s27_circuit

        a = generate_deterministic_tests(s27_circuit())
        b = generate_deterministic_tests(s27_circuit())
        assert [(t.si, t.vectors) for t in a.tests] == [
            (t.si, t.vectors) for t in b.tests
        ]

    @pytest.mark.slow
    def test_medium_circuit(self, medium_synth):
        det = generate_deterministic_tests(medium_synth)
        assert det.size > 0
        sim = FaultSimulator(medium_synth)
        hits = sim.simulate_grouped(det.tests, det.covered)
        assert set(hits) == set(det.covered)
