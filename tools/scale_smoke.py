"""CI gate: the largest catalog circuit must compile inside a memory budget.

Runs the whole capacity pipeline for the largest vendored circuit --
``.bench`` ingest, struct-of-arrays conversion, array levelization,
fault-graph compilation, and a small simulation probe -- in a forked
child under ``RLIMIT_AS`` and a wall-clock budget, reusing the fuzz
sandbox (:func:`repro.fuzz.sandbox.run_sandboxed`).  The child reports
its peak RSS, which the parent checks against a separate RSS budget: the
address-space limit catches runaway allocation at the kernel level, the
RSS check catches slow regressions that still fit the hard limit.

Prints a JSON verdict either way.  Exit codes: 0 pass, 1 budget or
structural contract failure, 2 the sandbox killed the child (timeout,
OOM, crash).

Usage::

    PYTHONPATH=src python tools/scale_smoke.py [--circuit s38417]
        [--mem-mb 2048] [--rss-budget-mb 1024] [--timeout 300]
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from typing import Any, Dict, Optional, Sequence


def _case(name: str) -> Dict[str, Any]:
    """Runs inside the sandboxed child: ingest, compile, probe, report."""
    from repro.bench_circuits.catalog import load_circuit
    from repro.circuit.levelize import levelize_arrays
    from repro.core.config import BistConfig
    from repro.core.test_set import generate_ts0
    from repro.faults.fault_sim import FaultSimulator
    from repro.faults.model import FaultGraph, generate_faults

    t0 = time.perf_counter()
    circuit = load_circuit(name)
    load_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    arrays = circuit.to_arrays()
    la = levelize_arrays(arrays)
    levelize_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    graph = FaultGraph(circuit)
    compile_s = time.perf_counter() - t0

    # Tiny end-to-end probe: the compiled kernels must actually run and
    # detect something.  A couple hundred faults against a handful of
    # random tests reliably yields detections on any real circuit.
    cfg = BistConfig(la=8, lb=16, n=4)
    ts0 = generate_ts0(circuit, cfg)
    faults = generate_faults(circuit)[:256]
    t0 = time.perf_counter()
    hits = FaultSimulator(graph).simulate_grouped(ts0, faults)
    probe_s = time.perf_counter() - t0

    return {
        "circuit": name,
        "gates": circuit.num_gates,
        "nets": arrays.n_nets,
        "depth": int(la.depth),
        "probe_faults_detected": len(hits),
        "load_seconds": round(load_s, 3),
        "levelize_seconds": round(levelize_s, 3),
        "compile_seconds": round(compile_s, 3),
        "probe_seconds": round(probe_s, 3),
        "maxrss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
        ),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--circuit", default="s38417",
        help="catalog circuit to compile (default: the largest, s38417)",
    )
    parser.add_argument(
        "--mem-mb", type=int, default=2048,
        help="hard RLIMIT_AS address-space budget for the child (MiB)",
    )
    parser.add_argument(
        "--rss-budget-mb", type=int, default=1024,
        help="peak-RSS budget the child must stay under (MiB)",
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0,
        help="wall-clock budget for the child (seconds)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    from repro.fuzz.sandbox import STATUS_OK, run_sandboxed

    verdict = run_sandboxed(
        _case, (args.circuit,),
        timeout_s=args.timeout,
        mem_bytes=args.mem_mb * 1024 * 1024,
    )
    report: Dict[str, Any] = {
        "status": verdict.status,
        "detail": verdict.detail,
        "mem_mb": args.mem_mb,
        "rss_budget_mb": args.rss_budget_mb,
        "payload": verdict.payload,
    }
    if verdict.status != STATUS_OK:
        report["pass"] = False
        print(json.dumps(report, indent=2))
        return 2
    payload = verdict.payload or {}
    failures = []
    if payload.get("probe_faults_detected", 0) <= 0:
        failures.append("simulation probe detected nothing")
    if payload.get("maxrss_mb", float("inf")) > args.rss_budget_mb:
        failures.append(
            f"peak RSS {payload.get('maxrss_mb')}MB exceeds "
            f"{args.rss_budget_mb}MB budget"
        )
    report["pass"] = not failures
    report["failures"] = failures
    print(json.dumps(report, indent=2))
    return 0 if not failures else 1


if __name__ == "__main__":
    raise SystemExit(main())
