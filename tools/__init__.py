"""Repository tooling that is not part of the installed package."""
