"""AST determinism lint for the reproduction codebase.

Every reported number in this repository must be reproducible from a
:class:`BistConfig` alone; nondeterminism sneaks in through three doors,
each covered by a rule:

- ``DET001`` **unseeded-rng** -- ``random.Random()`` / numpy bit
  generators constructed without a seed, and any use of the *global*
  RNG state (``random.random()``, ``np.random.seed()``,
  ``np.random.rand()``, ...).  Explicitly seeded generators
  (``np.random.Generator(np.random.PCG64(seed))``) are fine.
- ``DET002`` **wall-clock** -- ``time.time()`` / ``time.clock()``
  inside the reproducibility-critical packages (``core/``, ``faults/``,
  ``simulation/``, ``robustness/``).  Use ``time.perf_counter()`` for
  section timing and deadlines;
  timing in ``experiments/`` (e.g. ``runner.py``) is allowlisted
  because those paths never feed results.
- ``DET003`` **set-iteration** -- iterating a set (or feeding one to
  ``list``/``tuple``/``enumerate``/``str.join``) where the element
  order leaks into output; wrap in ``sorted(...)`` instead.
- ``DET004`` **raw-cpu-count** -- ``os.cpu_count()`` inside the
  reproducibility-critical packages.  It reports the machine's cores,
  which oversubscribes workers under cgroup/affinity limits (containers,
  CI, ``taskset``); use
  :func:`repro.faults.sharding.available_cpu_count` instead.  Host
  metadata recorded by ``benchmarks/`` is outside the critical set and
  may read it directly.

Usage::

    python -m tools.detlint src/            # exit 1 on any finding
    python -m tools.detlint src tools tests

Suppress a single line with a trailing comment::

    t = time.time()  # detlint: ignore[DET002]
    x = frob()       # detlint: ignore          (all rules)
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Path components whose files must be free of wall-clock reads.
CRITICAL_PARTS = {"core", "faults", "simulation", "robustness", "fuzz"}

#: Module-level functions of stdlib ``random`` that use the hidden
#: global generator.
GLOBAL_RANDOM_FUNCS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
}

#: Legacy ``numpy.random`` module-level functions (global RandomState).
GLOBAL_NUMPY_FUNCS = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "gumbel", "hypergeometric",
    "laplace", "logistic", "lognormal", "logseries", "multinomial",
    "multivariate_normal", "negative_binomial", "noncentral_chisquare",
    "noncentral_f", "normal", "pareto", "permutation", "poisson", "power",
    "rand", "randint", "randn", "random", "random_integers",
    "random_sample", "ranf", "rayleigh", "sample", "seed", "shuffle",
    "standard_cauchy", "standard_exponential", "standard_gamma",
    "standard_normal", "standard_t", "triangular", "uniform", "vonmises",
    "wald", "weibull", "zipf",
}

#: Constructors that are deterministic only when given an explicit seed.
SEEDABLE_CTORS = {"Random", "default_rng", "PCG64", "PCG64DXSM", "MT19937",
                  "Philox", "SFC64", "SystemRandom"}

#: Call wrappers through which set iteration order leaks into results.
ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "enumerate", "reversed"}

_IGNORE_RE = re.compile(
    r"#\s*detlint:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)


@dataclass(frozen=True)
class Finding:
    path: Path
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _line_ignores(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule IDs (None = all rules)."""
    ignores: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(line)
        if match:
            rules = match.group("rules")
            if rules is None:
                ignores[lineno] = None
            else:
                ignores[lineno] = {
                    r.strip() for r in rules.split(",") if r.strip()
                }
    return ignores


class _Visitor(ast.NodeVisitor):
    """One-pass walker: tracks import aliases, collects findings."""

    def __init__(self, path: Path, in_critical: bool) -> None:
        self.path = path
        self.in_critical = in_critical
        self.findings: List[Finding] = []
        # Local names bound to the modules we care about.
        self.random_aliases: Set[str] = set()
        self.numpy_aliases: Set[str] = set()
        self.numpy_random_aliases: Set[str] = set()
        self.time_aliases: Set[str] = set()
        self.os_aliases: Set[str] = set()
        # from-imports: local name -> (module, original name).
        self.from_imports: Dict[str, Tuple[str, str]] = {}

    # -- bookkeeping ----------------------------------------------------
    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(self.path, getattr(node, "lineno", 0), rule, message)
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_aliases.add(local)
            elif alias.name == "numpy":
                self.numpy_aliases.add(local)
            elif alias.name == "numpy.random":
                if alias.asname:
                    self.numpy_random_aliases.add(alias.asname)
                else:
                    self.numpy_aliases.add("numpy")
            elif alias.name == "time":
                self.time_aliases.add(local)
            elif alias.name == "os":
                self.os_aliases.add(local)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            local = alias.asname or alias.name
            if module == "numpy" and alias.name == "random":
                self.numpy_random_aliases.add(local)
            elif module in ("random", "numpy.random", "time", "os"):
                self.from_imports[local] = (module, alias.name)
        self.generic_visit(node)

    def _resolve(self, node: ast.AST) -> Optional[Tuple[str, str]]:
        """Resolve a call/attribute target to (module, name) if tracked.

        Handles ``random.seed`` / ``np.random.rand`` /
        ``nprandom.default_rng`` / bare names bound by from-imports.
        """
        if isinstance(node, ast.Name):
            return self.from_imports.get(node.id)
        if isinstance(node, ast.Attribute):
            value = node.value
            if isinstance(value, ast.Name):
                if value.id in self.random_aliases:
                    return ("random", node.attr)
                if value.id in self.numpy_random_aliases:
                    return ("numpy.random", node.attr)
                if value.id in self.time_aliases:
                    return ("time", node.attr)
                if value.id in self.os_aliases:
                    return ("os", node.attr)
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in self.numpy_aliases
            ):
                return ("numpy.random", node.attr)
        return None

    # -- DET001 / DET002 ------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve(node.func)
        if resolved is not None:
            module, name = resolved
            if module == "random" and name in GLOBAL_RANDOM_FUNCS:
                self._add(
                    node, "DET001",
                    f"random.{name}() uses the global RNG; construct a "
                    f"seeded random.Random(seed) instead",
                )
            elif module == "numpy.random" and name in GLOBAL_NUMPY_FUNCS:
                self._add(
                    node, "DET001",
                    f"numpy.random.{name}() uses global RNG state; use a "
                    f"seeded np.random.Generator(np.random.PCG64(seed))",
                )
            elif name in SEEDABLE_CTORS and not node.args:
                self._add(
                    node, "DET001",
                    f"{name}() without a seed is entropy-seeded; pass an "
                    f"explicit seed",
                )
            elif (
                module == "time"
                and name in ("time", "clock")
                and self.in_critical
            ):
                self._add(
                    node, "DET002",
                    f"time.{name}() in a reproducibility-critical path; "
                    f"use time.perf_counter() for durations",
                )
            elif (
                module == "os"
                and name == "cpu_count"
                and self.in_critical
            ):
                self._add(
                    node, "DET004",
                    "os.cpu_count() overcounts under cgroup/affinity "
                    "limits; use repro.faults.sharding."
                    "available_cpu_count()",
                )
        self._check_order_sensitive_call(node)
        self.generic_visit(node)

    # -- DET003 ---------------------------------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def _flag_set_iteration(self, node: ast.AST, context: str) -> None:
        self._add(
            node, "DET003",
            f"iterating a set {context} has nondeterministic order; "
            f"wrap it in sorted(...)",
        )

    def _check_order_sensitive_call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in ORDER_SENSITIVE_WRAPPERS
            and node.args
            and self._is_set_expr(node.args[0])
        ):
            self._flag_set_iteration(node, f"via {func.id}()")
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and node.args
            and self._is_set_expr(node.args[0])
        ):
            self._flag_set_iteration(node, "via str.join()")

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag_set_iteration(node, "in a for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            if self._is_set_expr(gen.iter):
                self._flag_set_iteration(node, "in a comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    # Building a set FROM a set is order-safe, but nested generators over
    # sets inside a SetComp are not; keep the uniform check.
    visit_SetComp = _visit_comprehension


def is_critical_path(path: Path) -> bool:
    """True for files in the packages whose output must be reproducible."""
    return bool(CRITICAL_PARTS.intersection(path.parts))


def scan_file(path: Path) -> List[Finding]:
    """Lint one Python file; returns findings after inline suppressions."""
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, "DET000",
                        f"syntax error: {exc.msg}")]
    visitor = _Visitor(path, in_critical=is_critical_path(path))
    visitor.visit(tree)
    ignores = _line_ignores(source)
    kept = []
    for finding in visitor.findings:
        if finding.line in ignores:
            rules = ignores[finding.line]
            if rules is None or finding.rule in rules:
                continue
        kept.append(finding)
    return kept


def scan_paths(paths: Sequence[Path]) -> List[Finding]:
    findings: List[Finding] = []
    for root in paths:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for file in files:
            findings.extend(scan_file(file))
    return sorted(findings, key=lambda f: (str(f.path), f.line, f.rule))


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    paths = [Path(p) for p in argv] or [Path("src")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"detlint: no such path: {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2
    findings = scan_paths(paths)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"detlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
