"""CI gate: the job service's whole crash-safety story, end to end.

Drives a real ``repro serve`` subprocess through the claims
``docs/serving.md`` makes, and fails loudly on the first one that does
not hold:

1. **liveness** -- the server comes up, writes its port file, answers
   ``/healthz``.
2. **correctness** -- an s27 characterization job runs to ``done`` and
   its result is byte-identical to an in-process
   :class:`~repro.core.session.LimitedScanBist` run of the same
   submission.
3. **cache** -- resubmitting the identical netlist + config is answered
   terminally at submission time (``cached: true``) with the server's
   ``jobs_simulated`` counter unchanged: zero fault-simulation
   dispatches.
4. **crash recovery** -- a chaos-paced job (``commit_delay_s`` stretches
   the run) is interrupted by SIGKILL -- no warning, no cleanup -- after
   its first committed iteration is visible in the events stream.  A new
   server on the same data dir recovers the job, resumes it from its
   checkpoint journal, and the final result is byte-identical to the
   clean in-process run.

Prints a JSON verdict either way.  Exit codes: 0 pass, 1 a claim
failed, 2 harness trouble (server never came up).

Usage::

    PYTHONPATH=src python tools/serve_smoke.py [--keep] [--timeout 180]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

#: The paced (slow) job's config: incomplete on purpose so Procedure 2
#: runs the full iteration budget, giving the kill a wide target.
SLOW_CONFIG = {"n": 1, "la": 2, "lb": 4, "max_iterations": 8}
#: The quick job's config: converges in one or two iterations.
QUICK_CONFIG = {"n": 8, "max_iterations": 6}


class SmokeFailure(AssertionError):
    """One of the service's published claims did not hold."""


def _serve_cmd(data_dir: Path, extra: Sequence[str] = ()) -> List[str]:
    return [
        sys.executable, "-m", "repro", "serve",
        "--data-dir", str(data_dir),
        "--port", "0",
        "--enable-chaos",
        "--wall-budget", "120",
        "--retries", "2",
        *extra,
    ]


def _start_server(data_dir: Path, timeout_s: float) -> subprocess.Popen:
    port_file = data_dir / "serve.port"
    if port_file.exists():
        port_file.unlink()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.Popen(
        _serve_cmd(data_dir),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text("utf-8").strip():
            return proc
        if proc.poll() is not None:
            raise SmokeFailure(
                f"server exited {proc.returncode} before binding"
            )
        time.sleep(0.05)
    proc.kill()
    raise SmokeFailure(f"server did not bind within {timeout_s:g}s")


def _client(data_dir: Path):
    from repro.serve.client import ServeClient

    port = int((data_dir / "serve.port").read_text("utf-8").strip())
    return ServeClient(port=port)


def _reference_result(bench: str, config: Dict[str, Any]) -> Dict[str, Any]:
    """The in-process ground truth the served results must match."""
    from repro.circuit.bench_parser import parse_bench
    from repro.core.config import BistConfig
    from repro.core.session import LimitedScanBist
    from repro.experiments.serialize import result_to_dict
    from repro.faults.collapse import collapse_faults

    circuit = parse_bench(bench, name="s27")
    full = {**BistConfig().to_dict(), **config}
    session = LimitedScanBist(
        circuit,
        config=BistConfig.from_dict(full),
        target_faults=collapse_faults(circuit),
    )
    return result_to_dict(session.run())


def _require(claim: bool, message: str) -> None:
    if not claim:
        raise SmokeFailure(message)


def run_smoke(data_dir: Path, timeout_s: float) -> Dict[str, Any]:
    from repro.bench_circuits import load_circuit
    from repro.circuit.bench_parser import write_bench

    bench = write_bench(load_circuit("s27"))
    report: Dict[str, Any] = {}

    server = _start_server(data_dir, timeout_s=30.0)
    try:
        client = _client(data_dir)
        health = client.healthz()
        _require(health["status"] == "ok", "healthz not ok")
        report["version"] = health["version"]

        # -- claim 2: a job runs and matches the in-process run --------
        job = client.submit(bench, name="s27", config=QUICK_CONFIG)
        final = client.wait(job["job_id"], timeout_s=timeout_s)
        _require(final["state"] == "done", f"job ended {final['state']}")
        served = client.result(job["job_id"])["result"]
        expected = _reference_result(bench, QUICK_CONFIG)
        _require(
            json.dumps(served, sort_keys=True)
            == json.dumps(expected, sort_keys=True),
            "served result differs from in-process run",
        )
        report["quick_job"] = job["job_id"]

        # -- claim 3: identical resubmission is a pure cache hit -------
        sims_before = client.healthz()["jobs_simulated"]
        rerun = client.submit(bench, name="s27", config=QUICK_CONFIG)
        _require(rerun["state"] == "done", "resubmission not terminal")
        _require(rerun["cached"], "resubmission not served from cache")
        _require(
            client.healthz()["jobs_simulated"] == sims_before,
            "cache hit still dispatched a simulation",
        )
        rerun_result = client.result(rerun["job_id"])["result"]
        _require(
            json.dumps(rerun_result, sort_keys=True)
            == json.dumps(expected, sort_keys=True),
            "cached result differs from in-process run",
        )
        report["cached_job"] = rerun["job_id"]

        # -- claim 4a: start a paced job and SIGKILL mid-run -----------
        slow = client.submit(
            bench,
            name="s27",
            config=SLOW_CONFIG,
            chaos={"commit_delay_s": 0.5},
        )
        slow_id = slow["job_id"]
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            events = client.events(slow_id)
            if any(e["kind"] == "iteration" for e in events):
                break
            _require(
                client.status(slow_id)["state"] in ("queued", "running"),
                "paced job finished before it could be interrupted",
            )
            time.sleep(0.05)
        else:
            raise SmokeFailure("paced job never committed an iteration")
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
        report["killed_mid_job"] = slow_id
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)

    # -- claim 4b: restart, recover, byte-identical final result -------
    server = _start_server(data_dir, timeout_s=30.0)
    try:
        client = _client(data_dir)
        health = client.healthz()
        _require(
            health["recovered_jobs"] >= 1, "restart recovered no jobs"
        )
        final = client.wait(slow_id, timeout_s=timeout_s)
        _require(
            final["state"] == "done", f"recovered job ended {final['state']}"
        )
        resumed = client.result(slow_id)["result"]
        expected_slow = _reference_result(bench, SLOW_CONFIG)
        _require(
            json.dumps(resumed, sort_keys=True)
            == json.dumps(expected_slow, sort_keys=True),
            "resumed result differs from uninterrupted run",
        )
        report["recovered_jobs"] = health["recovered_jobs"]
        report["final_health"] = client.healthz()["jobs"]
    finally:
        server.terminate()
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait(timeout=30)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--data-dir", default=None,
                        help="service data dir (default: fresh temp dir)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the data dir for inspection")
    parser.add_argument("--timeout", type=float, default=180.0,
                        help="budget for each wait (default 180s)")
    args = parser.parse_args(argv)

    owned = args.data_dir is None
    data_dir = Path(args.data_dir or tempfile.mkdtemp(prefix="serve-smoke-"))
    data_dir.mkdir(parents=True, exist_ok=True)
    try:
        report = run_smoke(data_dir, timeout_s=args.timeout)
    except SmokeFailure as exc:
        print(json.dumps({"verdict": "FAIL", "reason": str(exc)}, indent=2))
        return 1
    except Exception as exc:  # noqa: BLE001 - harness trouble, not a claim
        print(json.dumps(
            {"verdict": "ERROR", "reason": f"{type(exc).__name__}: {exc}"},
            indent=2,
        ))
        return 2
    finally:
        if owned and not args.keep:
            shutil.rmtree(data_dir, ignore_errors=True)
    print(json.dumps({"verdict": "PASS", **report}, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
