"""CI gate: ``repro analyze`` must work end to end on real scales.

Runs the CLI subcommand as a subprocess (the same entry point a user
hits) on one small-tier and one large-tier catalog circuit, parses the
``--json`` output, and checks it against the published schema: every
key a downstream consumer may rely on must be present, typed, and
internally consistent (RPR count bounded by the collapsed universe,
fingerprint well-formed, hardest faults actually under the threshold).
The large circuit doubles as a wall-clock gate -- the vectorized COP
sweeps must stay interactive (well under the 10 s budget) at s38584
scale.

Prints a JSON verdict.  Exit codes: 0 pass, 1 schema/invariant/budget
failure, 2 the subcommand itself failed.

Usage::

    PYTHONPATH=src python tools/analyze_smoke.py
        [--small s298] [--large s38584] [--budget-s 10]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence


def _check_schema(payload: Dict[str, Any], name: str) -> List[str]:
    """Schema + invariant failures for one analyze payload (empty = ok)."""
    problems: List[str] = []

    def expect(cond: bool, message: str) -> None:
        if not cond:
            problems.append(f"{name}: {message}")

    expect(payload.get("schema") == 1, f"schema != 1: {payload.get('schema')}")
    expect(payload.get("circuit") == name, "circuit name mismatch")
    fp = payload.get("fingerprint", "")
    expect(
        isinstance(fp, str) and len(fp) == 64
        and all(c in "0123456789abcdef" for c in fp),
        "fingerprint is not 64 hex chars",
    )
    nets = payload.get("nets", {})
    for key in ("pi", "ff", "po", "gates", "total"):
        expect(
            isinstance(nets.get(key), int) and nets.get(key, -1) >= 0,
            f"nets.{key} missing or negative",
        )
    threshold = payload.get("rpr_threshold")
    expect(
        isinstance(threshold, float) and 0.0 < threshold < 1.0,
        "rpr_threshold not in (0, 1)",
    )
    faults = payload.get("faults", {})
    collapsed = faults.get("collapsed")
    rpr = faults.get("rpr")
    expect(isinstance(collapsed, int) and collapsed > 0, "no collapsed faults")
    expect(isinstance(rpr, int) and 0 <= rpr <= (collapsed or 0),
           "faults.rpr out of range")
    expect(
        isinstance(faults.get("untestable"), int)
        and 0 <= faults.get("untestable", -1) <= (collapsed or 0),
        "faults.untestable out of range",
    )
    dp = payload.get("detection_probability", {})
    for key in ("min", "median", "max"):
        value = dp.get(key)
        expect(
            isinstance(value, float) and 0.0 <= value <= 1.0,
            f"detection_probability.{key} not a probability",
        )
    etl = payload.get("expected_test_length", {})
    expect(
        isinstance(etl.get("confidence"), float)
        and 0.0 < etl.get("confidence", 0.0) < 1.0,
        "expected_test_length.confidence not in (0, 1)",
    )
    patterns = etl.get("patterns")
    expect(
        patterns is None or (isinstance(patterns, int) and patterns >= 1),
        "expected_test_length.patterns not None or a positive int",
    )
    top = payload.get("top_rpr_faults")
    expect(isinstance(top, list), "top_rpr_faults not a list")
    for entry in top if isinstance(top, list) else []:
        expect(
            isinstance(entry.get("fault"), str)
            and isinstance(entry.get("p"), float)
            and entry["p"] < (threshold or 0.0),
            f"top_rpr_faults entry not under the threshold: {entry}",
        )
    benefit = payload.get("state_bit_benefit")
    expect(isinstance(benefit, list), "state_bit_benefit not a list")
    for entry in benefit if isinstance(benefit, list) else []:
        expect(
            isinstance(entry.get("position"), int)
            and isinstance(entry.get("net"), str)
            and isinstance(entry.get("score"), float)
            and entry["score"] > 0.0,
            f"state_bit_benefit entry malformed: {entry}",
        )
    expect(isinstance(payload.get("cache_hit"), bool), "cache_hit not a bool")
    return problems


def _run_analyze(name: str) -> Dict[str, Any]:
    """One CLI invocation: elapsed seconds + parsed payload or error."""
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "analyze", name, "--json"],
        capture_output=True, text=True, env=os.environ.copy(),
    )
    elapsed = time.perf_counter() - t0
    result: Dict[str, Any] = {
        "circuit": name,
        "elapsed_seconds": round(elapsed, 3),
        "returncode": proc.returncode,
    }
    if proc.returncode != 0:
        result["stderr"] = proc.stderr[-2000:]
        return result
    try:
        result["payload"] = json.loads(proc.stdout)
    except json.JSONDecodeError as exc:
        result["error"] = f"output is not JSON: {exc}"
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--small", default="s298",
        help="small-tier circuit to analyze (default: s298)",
    )
    parser.add_argument(
        "--large", default="s38584",
        help="large-tier circuit to analyze (default: s38584)",
    )
    parser.add_argument(
        "--budget-s", type=float, default=10.0,
        help="wall-clock budget per circuit, seconds (default: 10)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    runs = [_run_analyze(name) for name in (args.small, args.large)]
    failures: List[str] = []
    for run in runs:
        name = run["circuit"]
        if run["returncode"] != 0:
            failures.append(f"{name}: exit {run['returncode']}")
            continue
        if "payload" not in run:
            failures.append(f"{name}: {run.get('error', 'no payload')}")
            continue
        failures.extend(_check_schema(run["payload"], name))
        if run["elapsed_seconds"] > args.budget_s:
            failures.append(
                f"{name}: {run['elapsed_seconds']}s exceeds "
                f"{args.budget_s}s budget"
            )

    report = {
        "pass": not failures,
        "budget_seconds": args.budget_s,
        "failures": failures,
        "runs": runs,
    }
    print(json.dumps(report, indent=2))
    if any(r["returncode"] != 0 for r in runs):
        return 2
    return 0 if not failures else 1


if __name__ == "__main__":
    raise SystemExit(main())
